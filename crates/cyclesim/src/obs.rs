//! End-of-run flush of cycle-simulator statistics into the global
//! `mlp-obs` layer: cycle/instruction totals, pipeline stall cycles
//! (cycles where no stage made progress), useful off-chip accesses by
//! miss kind, MSHR occupancy high-water, and runahead interval
//! entries/exits.
//!
//! The engines accumulate in plain local fields and call [`flush_run`]
//! once per simulated run; the per-cycle hot paths carry no probes.

use crate::report::CycleReport;
use mlp_obs::{Counter, Histogram, LocalHist, Value};

static RUNS: Counter = Counter::new("cyclesim.runs");
static INSTS: Counter = Counter::new("cyclesim.insts");
static CYCLES: Counter = Counter::new("cyclesim.cycles");
static STALL_CYCLES: Counter = Counter::new("cyclesim.stall_cycles");
static OFFCHIP_DMISS: Counter = Counter::new("cyclesim.offchip.dmiss");
static OFFCHIP_IMISS: Counter = Counter::new("cyclesim.offchip.imiss");
static OFFCHIP_PMISS: Counter = Counter::new("cyclesim.offchip.pmiss");
static OFFCHIP_USEFUL: Counter = Counter::new("cyclesim.offchip.useful");
static MSHR_HIGH_WATER: Counter = Counter::new_max("cyclesim.mshr.high_water");
static RUNAHEAD_ENTRIES: Counter = Counter::new("cyclesim.runahead.entries");
static RUNAHEAD_EXITS: Counter = Counter::new("cyclesim.runahead.exits");

/// Lengths of uninterrupted no-progress stretches (consecutive dead
/// cycles the clock skipped), in cycles.
static STALL_BURST: Histogram = Histogram::new("cyclesim.stall_burst");

/// Durations of completed runahead episodes, in cycles.
static RUNAHEAD_EPISODE: Histogram = Histogram::new("cyclesim.runahead.episode");

/// Per-run extras the [`CycleReport`] does not carry.
#[derive(Clone, Debug, Default)]
pub(crate) struct RunObs {
    /// Cycles (in the measurement window) where no stage made progress.
    pub stall_cycles: u64,
    /// Peak simultaneous MSHR occupancy over the whole run.
    pub mshr_high_water: u64,
    /// Runahead intervals entered (0 for the conventional pipeline).
    pub runahead_entries: u64,
    /// Runahead intervals exited.
    pub runahead_exits: u64,
    /// Distribution of stall-burst lengths in the measurement window.
    pub stall_burst: LocalHist,
    /// Distribution of completed runahead episode durations.
    pub runahead_episode: LocalHist,
}

/// Flushes one finished run into the global counters and, when events
/// are armed, emits one `cyclesim.run` event line.
pub(crate) fn flush_run(report: &CycleReport, extra: RunObs) {
    if mlp_obs::counters_on() {
        RUNS.inc();
        INSTS.add(report.insts);
        CYCLES.add(report.cycles);
        STALL_CYCLES.add(extra.stall_cycles);
        OFFCHIP_DMISS.add(report.offchip.dmiss);
        OFFCHIP_IMISS.add(report.offchip.imiss);
        OFFCHIP_PMISS.add(report.offchip.pmiss);
        OFFCHIP_USEFUL.add(report.offchip.total());
        MSHR_HIGH_WATER.record_max(extra.mshr_high_water);
        RUNAHEAD_ENTRIES.add(extra.runahead_entries);
        RUNAHEAD_EXITS.add(extra.runahead_exits);
        extra.stall_burst.flush_to(&STALL_BURST);
        extra.runahead_episode.flush_to(&RUNAHEAD_EPISODE);
    }
    if mlp_obs::events_on() {
        mlp_obs::emit(
            "cyclesim.run",
            &[
                ("insts", Value::U64(report.insts)),
                ("cycles", Value::U64(report.cycles)),
                ("stall_cycles", Value::U64(extra.stall_cycles)),
                ("offchip", Value::U64(report.offchip.total())),
                ("mshr_high_water", Value::U64(extra.mshr_high_water)),
                ("runahead_entries", Value::U64(extra.runahead_entries)),
                ("cpi", Value::F64(report.cpi())),
            ],
        );
    }
}
