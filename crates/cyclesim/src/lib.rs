//! A cycle-accurate out-of-order processor simulator.
//!
//! This crate plays the role of the paper's internal cycle-accurate SPARC
//! simulator: the *reference* against which MLPsim's epoch model is
//! validated (Table 3), and the source of the timing-only quantities the
//! epoch model cannot produce — overall CPI, perfect-L2 CPI
//! (`CPI_perf`) and, via the performance model, the compute/memory
//! overlap `Overlap_CM` (Tables 1 and 4).
//!
//! The pipeline models: decoupled fetch (with I-cache and the
//! gshare/BTB/RAS front end), dispatch into ROB + issue window, dynamic
//! issue under the paper's Table 2 constraints A–C (loads in order /
//! waiting on store addresses / speculating past stores; branches in
//! order — like the paper's simulator, out-of-order branch issue is not
//! supported here, which is exactly why the paper validates only A–C),
//! MSHR-based off-chip miss handling with merging, store-to-load
//! forwarding, serializing-instruction pipeline drains, and misprediction
//! redirect penalties. Instantaneous MLP(t) is integrated exactly as
//! defined in §2.1: the number of useful off-chip accesses outstanding,
//! averaged over cycles where at least one is outstanding.
//!
//! # Examples
//!
//! ```
//! use mlp_cyclesim::{CycleSim, CycleSimConfig};
//! use mlp_workloads::micro;
//!
//! let trace = micro::independent_misses(4, 2);
//! let report = CycleSim::new(CycleSimConfig::default())
//!     .run(&mut mlp_isa::SliceTrace::new(&trace), 0, u64::MAX);
//! assert_eq!(report.insts, 12);
//! assert!(report.cycles > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod obs;
mod pipeline;
mod report;
pub mod runahead;
pub mod smt;

pub use config::CycleSimConfig;
pub use pipeline::CycleSim;
pub use report::CycleReport;
