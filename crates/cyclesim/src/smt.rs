//! A simultaneous-multithreading (SMT) variant of the cycle model —
//! the paper's first stated piece of future work ("studying MLP for
//! multithreaded processors").
//!
//! Hardware model: `N` hardware threads share the cache hierarchy, the
//! MSHR file, the branch predictor and the issue/retire bandwidth; each
//! thread has a private fetch queue, ROB/issue-window partition, rename
//! state and store queue. Fetch and issue priority rotate round-robin
//! each cycle. Threads run *different* workloads in disjoint address
//! spaces (a per-thread address-space tag keeps the shared caches
//! honest).
//!
//! The interesting question the paper poses: does multithreading raise
//! *chip-level* MLP (more independent misses in flight), and what does
//! each thread pay in cache interference? [`SmtReport`] answers both:
//! combined MLP(t) integration plus per-thread instruction counts and
//! miss rates.
//!
//! The model is deliberately simpler than the single-thread pipeline in
//! [`crate::CycleSim`] (no store-to-load forwarding across the store
//! queue, conservative same-address gating only): it is a *study*
//! vehicle for the multithreading question, not a validated reference.

use crate::CycleSimConfig;
use mlp_hash::FxHashMap;
use mlp_isa::{line_of, Inst, OpKind, Reg, TraceSource};
use mlp_mem::{Access, Hierarchy, Mshr, MshrOutcome};
use mlp_predict::{BranchObserver, BranchPredictor, PerfectBranchPredictor};
use mlpsim::{BranchMode, OffchipCounts};
use std::collections::{BTreeMap, VecDeque};

/// Address-space tag: thread `t`'s addresses live at `t << ASID_SHIFT`.
const ASID_SHIFT: u32 = 44;

/// Results of an SMT run.
#[derive(Clone, Debug, Default)]
pub struct SmtReport {
    /// Cycles elapsed.
    pub cycles: u64,
    /// Instructions retired per thread.
    pub insts: Vec<u64>,
    /// Useful off-chip accesses (all threads combined).
    pub offchip: OffchipCounts,
    /// Integral of combined MLP(t).
    pub mlp_weighted_cycles: u64,
    /// Cycles with at least one useful access outstanding.
    pub active_cycles: u64,
}

impl SmtReport {
    /// Combined (chip-level) MLP.
    pub fn mlp(&self) -> f64 {
        if self.active_cycles == 0 {
            1.0
        } else {
            self.mlp_weighted_cycles as f64 / self.active_cycles as f64
        }
    }

    /// Total instructions per cycle across threads.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.insts.iter().sum::<u64>() as f64 / self.cycles as f64
        }
    }
}

#[derive(Clone, Debug)]
struct Entry {
    kind: OpKind,
    producers: [Option<u64>; 3],
    mem_addr: Option<u64>,
    mispredicted: bool,
    issued: bool,
    completed: bool,
    complete_at: u64,
}

struct Thread<'a> {
    trace: &'a mut dyn TraceSource,
    fetch_queue: VecDeque<(Inst, bool)>,
    pending_fetch: Option<Inst>,
    fetch_stall_until: u64,
    awaiting_redirect: bool,
    last_ifetch_line: u64,
    trace_done: bool,
    fetched: u64,
    rob: VecDeque<Entry>,
    head_seq: u64,
    next_seq: u64,
    unissued: usize,
    last_writer: [u64; Reg::COUNT],
    store_pending: FxHashMap<u64, u64>, // addr8 -> seq of youngest older store
    serialize_block: bool,
    retired: u64,
}

enum Branches {
    Real(BranchPredictor),
    Perfect(PerfectBranchPredictor),
}

impl Branches {
    fn observe(&mut self, inst: &Inst) -> bool {
        match self {
            Branches::Real(p) => p.observe(inst),
            Branches::Perfect(p) => p.observe(inst),
        }
    }
}

/// The SMT machine.
///
/// # Examples
///
/// ```no_run
/// use mlp_cyclesim::{smt::SmtSim, CycleSimConfig};
/// use mlp_workloads::{Workload, WorkloadKind};
///
/// let mut a = Workload::new(WorkloadKind::Database, 1);
/// let mut b = Workload::new(WorkloadKind::SpecJbb2000, 2);
/// let report = SmtSim::new(CycleSimConfig::default())
///     .run(vec![&mut a, &mut b], 50_000, 100_000);
/// println!("combined MLP {:.2}", report.mlp());
/// ```
#[derive(Debug)]
pub struct SmtSim {
    config: CycleSimConfig,
}

impl SmtSim {
    /// Creates an SMT simulator; the ROB and issue window are partitioned
    /// evenly among the threads at run time.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`CycleSimConfig::validate`].
    pub fn new(config: CycleSimConfig) -> SmtSim {
        config.validate();
        SmtSim { config }
    }

    /// Runs the given threads: each first retires `warmup` instructions
    /// (training caches and predictors, uncounted), then up to `measure`
    /// more are measured (the run also ends when every trace is
    /// exhausted). Measurement starts when the *last* thread crosses its
    /// warm-up boundary.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is empty or larger than 8.
    pub fn run(
        &mut self,
        threads: Vec<&mut dyn TraceSource>,
        warmup: u64,
        measure: u64,
    ) -> SmtReport {
        let insts_per_thread = warmup.saturating_add(measure);
        assert!(
            !threads.is_empty() && threads.len() <= 8,
            "1..=8 SMT threads supported"
        );
        let n = threads.len();
        let cfg = &self.config;
        let rob_each = (cfg.rob / n).max(4);
        let iw_each = (cfg.iw / n).max(4);
        let mut hierarchy = Hierarchy::new(cfg.hierarchy);
        let mut mshr = Mshr::new(cfg.mshrs, cfg.mem_latency);
        let mut branches = match cfg.branch {
            BranchMode::Real(c) => Branches::Real(BranchPredictor::new(c)),
            BranchMode::Perfect => Branches::Perfect(PerfectBranchPredictor::new()),
        };
        let mut ts: Vec<Thread> = threads
            .into_iter()
            .map(|trace| Thread {
                trace,
                fetch_queue: VecDeque::with_capacity(cfg.fetch_buffer / n + 1),
                pending_fetch: None,
                fetch_stall_until: 0,
                awaiting_redirect: false,
                last_ifetch_line: u64::MAX,
                trace_done: false,
                fetched: 0,
                rob: VecDeque::with_capacity(rob_each.min(1 << 14)),
                head_seq: 0,
                next_seq: 0,
                unissued: 0,
                last_writer: [0; Reg::COUNT],
                store_pending: mlp_hash::map_with_capacity(1024),
                serialize_block: false,
                retired: 0,
            })
            .collect();

        let mut now: u64 = 0;
        let mut completions: BTreeMap<u64, Vec<(usize, u64)>> = BTreeMap::new();
        let mut outstanding: BTreeMap<u64, u32> = BTreeMap::new();
        let mut report = SmtReport {
            insts: vec![0; n],
            ..SmtReport::default()
        };
        let mut rr = 0usize; // round-robin priority cursor
        let mut idle_guard: u64 = 0;
        // Reused across cycles/threads so the issue scan does not allocate.
        let mut decisions: Vec<u64> = Vec::with_capacity(cfg.issue_width);
        let mut measuring = warmup == 0;
        let mut measure_start: u64 = 0;

        let done = |ts: &[Thread], goal: u64| {
            ts.iter().all(|t| {
                t.retired >= goal
                    || (t.trace_done
                        && t.fetch_queue.is_empty()
                        && t.pending_fetch.is_none()
                        && t.rob.is_empty())
            })
        };

        while !done(&ts, insts_per_thread) {
            mshr.expire(now);
            // Complete.
            while let Some((&k, _)) = completions.iter().next() {
                if k > now {
                    break;
                }
                for (tid, seq) in completions.remove(&k).expect("key just read") {
                    let t = &mut ts[tid];
                    if seq >= t.head_seq {
                        let idx = (seq - t.head_seq) as usize;
                        t.rob[idx].completed = true;
                    }
                }
            }
            let mut worked = false;

            // Retire (per thread).
            for (tid, t) in ts.iter_mut().enumerate() {
                let mut k = 0;
                while k < cfg.retire_width {
                    match t.rob.front() {
                        Some(e) if e.completed => {}
                        _ => break,
                    }
                    let e = t.rob.pop_front().expect("checked");
                    t.head_seq += 1;
                    if e.kind.writes_memory() {
                        if let Some(addr) = e.mem_addr {
                            let _ = hierarchy.store(addr);
                        }
                    }
                    if e.kind.is_serializing() {
                        t.serialize_block = false;
                    }
                    t.retired += 1;
                    if t.retired > warmup {
                        report.insts[tid] += 1;
                    }
                    k += 1;
                    worked = true;
                }
            }

            // Issue: rotate thread priority; shared width.
            let mut budget = cfg.issue_width;
            for off in 0..n {
                let tid = (rr + off) % n;
                if budget == 0 {
                    break;
                }
                let head = ts[tid].head_seq;
                decisions.clear();
                {
                    let t = &ts[tid];
                    let mut branch_ok = true;
                    for (i, e) in t.rob.iter().enumerate() {
                        if decisions.len() >= budget {
                            break;
                        }
                        if e.issued {
                            continue;
                        }
                        let seq = head + i as u64;
                        let ready =
                            e.producers.iter().flatten().all(|&p| {
                                p < t.head_seq || t.rob[(p - t.head_seq) as usize].completed
                            });
                        let mut can = ready;
                        if e.kind.is_branch() && !branch_ok {
                            can = false;
                        }
                        // Conservative same-address store dependence.
                        if can && e.kind.reads_memory() {
                            if let Some(addr) = e.mem_addr {
                                if let Some(&sseq) = t.store_pending.get(&(addr & !7)) {
                                    if sseq >= t.head_seq && sseq < seq {
                                        let sidx = (sseq - t.head_seq) as usize;
                                        if !t.rob[sidx].issued {
                                            can = false;
                                        }
                                    }
                                }
                            }
                        }
                        if can && e.kind.reads_memory() && !cfg.perfect_l2 {
                            if let Some(addr) = e.mem_addr {
                                let line = line_of(addr);
                                if !mshr.is_pending(line)
                                    && !hierarchy.probe_l2(addr)
                                    && mshr.outstanding() >= cfg.mshrs
                                {
                                    can = false;
                                }
                            }
                        }
                        if can {
                            decisions.push(seq);
                        }
                        if e.kind.is_branch() && !can {
                            branch_ok = false;
                        }
                    }
                }
                budget -= decisions.len().min(budget);
                for &seq in &decisions {
                    worked = true;
                    let idx = (seq - ts[tid].head_seq) as usize;
                    let (kind, mem_addr, mispredicted) = {
                        let e = &ts[tid].rob[idx];
                        (e.kind, e.mem_addr, e.mispredicted)
                    };
                    let complete_at = match kind {
                        OpKind::Load | OpKind::Atomic | OpKind::Prefetch => {
                            let addr = mem_addr.expect("memory op");
                            let line = line_of(addr);
                            if !cfg.perfect_l2 && mshr.is_pending(line) {
                                let ready = mshr.ready_at(line).expect("pending");
                                if kind == OpKind::Prefetch {
                                    now + 1
                                } else {
                                    ready
                                }
                            } else {
                                let data_at = match hierarchy.load(addr) {
                                    Access::L1Hit => now + cfg.l1_latency,
                                    Access::L2Hit => now + cfg.l2_latency,
                                    Access::L3Hit => {
                                        let ready = now + cfg.l3_latency;
                                        if measuring {
                                            report.offchip.dmiss += 1;
                                        }
                                        *outstanding.entry(ready).or_insert(0) += 1;
                                        ready
                                    }
                                    Access::OffChip => {
                                        if cfg.perfect_l2 {
                                            now + cfg.l2_latency
                                        } else {
                                            match mshr.request(line, now) {
                                                MshrOutcome::Primary { ready_at }
                                                | MshrOutcome::Merged { ready_at } => {
                                                    if measuring {
                                                        match kind {
                                                            OpKind::Prefetch => {
                                                                report.offchip.pmiss += 1
                                                            }
                                                            _ => report.offchip.dmiss += 1,
                                                        }
                                                    }
                                                    *outstanding.entry(ready_at).or_insert(0) += 1;
                                                    ready_at
                                                }
                                                MshrOutcome::Full => now + cfg.mem_latency,
                                            }
                                        }
                                    }
                                };
                                if kind == OpKind::Prefetch {
                                    now + 1
                                } else {
                                    data_at
                                }
                            }
                        }
                        OpKind::Branch(_) => {
                            let t = now + 1;
                            if mispredicted {
                                ts[tid].fetch_stall_until = t + cfg.mispredict_penalty;
                                ts[tid].awaiting_redirect = false;
                            }
                            t
                        }
                        _ => now + 1,
                    };
                    let e = &mut ts[tid].rob[idx];
                    e.issued = true;
                    e.complete_at = complete_at;
                    ts[tid].unissued -= 1;
                    completions.entry(complete_at).or_default().push((tid, seq));
                }
            }

            // Dispatch (per thread, shared width round-robin).
            let mut budget = cfg.dispatch_width;
            for off in 0..n {
                let tid = (rr + off) % n;
                let t = &mut ts[tid];
                while budget > 0
                    && !t.serialize_block
                    && t.rob.len() < rob_each
                    && t.unissued < iw_each
                {
                    let Some(&(ref inst, mispredicted)) = t.fetch_queue.front() else {
                        break;
                    };
                    let serializing = inst.is_serializing() && cfg.issue.serializing();
                    if serializing && !t.rob.is_empty() {
                        break;
                    }
                    let inst = *inst;
                    t.fetch_queue.pop_front();
                    let seq = t.next_seq;
                    t.next_seq += 1;
                    let mut producers = [None; 3];
                    for (k, src) in inst.dep_srcs().enumerate() {
                        let w = t.last_writer[src.index()];
                        if w > t.head_seq {
                            producers[k] = Some(w - 1);
                        }
                    }
                    if let Some(dst) = inst.dep_dst() {
                        t.last_writer[dst.index()] = seq + 1;
                    }
                    if inst.kind.writes_memory() {
                        if let Some(m) = inst.mem {
                            t.store_pending.insert(m.addr & !7, seq);
                            if t.store_pending.len() > 1 << 14 {
                                let head = t.head_seq;
                                t.store_pending.retain(|_, &mut s| s >= head);
                            }
                        }
                    }
                    t.rob.push_back(Entry {
                        kind: inst.kind,
                        producers,
                        mem_addr: inst.mem.map(|m| m.addr),
                        mispredicted,
                        issued: false,
                        completed: false,
                        complete_at: u64::MAX,
                    });
                    t.unissued += 1;
                    if serializing {
                        t.serialize_block = true;
                    }
                    budget -= 1;
                    worked = true;
                }
            }

            // Fetch (per thread, shared width round-robin), with the
            // per-thread address-space tag applied as instructions enter.
            let mut budget = cfg.fetch_width;
            for off in 0..n {
                let tid = (rr + off) % n;
                let asid = (tid as u64) << ASID_SHIFT;
                let t = &mut ts[tid];
                if t.awaiting_redirect || now < t.fetch_stall_until {
                    continue;
                }
                while budget > 0 && t.fetch_queue.len() < cfg.fetch_buffer / n {
                    let inst = match t.pending_fetch.take() {
                        Some(i) => i,
                        None => {
                            if t.trace_done || t.fetched >= insts_per_thread.saturating_add(64) {
                                break;
                            }
                            let Some(mut inst) = t.trace.next_inst() else {
                                t.trace_done = true;
                                break;
                            };
                            // Re-home the instruction into this thread's
                            // address space.
                            inst.pc |= asid;
                            if let Some(m) = &mut inst.mem {
                                m.addr |= asid;
                            }
                            t.fetched += 1;
                            let linea = line_of(inst.pc);
                            if linea != t.last_ifetch_line {
                                t.last_ifetch_line = linea;
                                let arrives = match hierarchy.ifetch(inst.pc) {
                                    Access::L1Hit => None,
                                    Access::L2Hit => Some(now + cfg.l2_latency),
                                    Access::L3Hit => {
                                        let ready = now + cfg.l3_latency;
                                        if measuring {
                                            report.offchip.imiss += 1;
                                        }
                                        *outstanding.entry(ready).or_insert(0) += 1;
                                        Some(ready)
                                    }
                                    Access::OffChip => {
                                        if cfg.perfect_l2 {
                                            Some(now + cfg.l2_latency)
                                        } else {
                                            let ready = match mshr.request(linea, now) {
                                                MshrOutcome::Primary { ready_at }
                                                | MshrOutcome::Merged { ready_at } => ready_at,
                                                MshrOutcome::Full => now + cfg.mem_latency,
                                            };
                                            if measuring {
                                                report.offchip.imiss += 1;
                                            }
                                            *outstanding.entry(ready).or_insert(0) += 1;
                                            Some(ready)
                                        }
                                    }
                                };
                                if let Some(at) = arrives {
                                    t.fetch_stall_until = at;
                                    t.pending_fetch = Some(inst);
                                    break;
                                }
                            }
                            inst
                        }
                    };
                    let mispredicted = if inst.is_branch() {
                        branches.observe(&inst)
                    } else {
                        false
                    };
                    t.fetch_queue.push_back((inst, mispredicted));
                    budget -= 1;
                    worked = true;
                    if mispredicted {
                        t.awaiting_redirect = true;
                        t.fetch_stall_until = u64::MAX;
                        break;
                    }
                }
            }

            rr = (rr + 1) % n;
            if !measuring && ts.iter().all(|t| t.retired >= warmup || t.trace_done) {
                measuring = true;
                measure_start = now;
            }

            // Advance the clock, integrating combined MLP(t).
            let next = if worked {
                now + 1
            } else {
                let mut candidates: Vec<u64> = Vec::new();
                if let Some((&k, _)) = completions.iter().next() {
                    candidates.push(k);
                }
                if let Some((&k, _)) = outstanding.iter().next() {
                    candidates.push(k);
                }
                for t in &ts {
                    if t.fetch_stall_until > now && t.fetch_stall_until != u64::MAX {
                        candidates.push(t.fetch_stall_until);
                    }
                }
                candidates.into_iter().min().unwrap_or(now + 1).max(now + 1)
            };
            // Integrate piecewise over [now, next).
            let mut t0 = now;
            while t0 < next {
                let size: u32 = outstanding.values().sum();
                let boundary = outstanding
                    .keys()
                    .next()
                    .copied()
                    .filter(|&k| k < next)
                    .unwrap_or(next)
                    .max(t0 + 1);
                if size > 0 && measuring {
                    report.active_cycles += boundary - t0;
                    report.mlp_weighted_cycles += size as u64 * (boundary - t0);
                }
                t0 = boundary;
                while let Some((&k, _)) = outstanding.iter().next() {
                    if k <= t0 {
                        outstanding.remove(&k);
                    } else {
                        break;
                    }
                }
            }
            now = next;
            if worked {
                idle_guard = 0;
            } else {
                idle_guard += 1;
                assert!(
                    idle_guard < 100 * cfg.mem_latency + 1_000_000,
                    "SMT pipeline stuck at cycle {now}"
                );
            }
        }
        report.cycles = now.saturating_sub(measure_start);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlp_isa::SliceTrace;
    use mlp_workloads::micro;

    fn smt_run(traces: Vec<Vec<Inst>>, per_thread: u64) -> SmtReport {
        let mut sources: Vec<SliceTrace> = traces.iter().map(|t| SliceTrace::new(t)).collect();
        let dyns: Vec<&mut dyn TraceSource> = sources
            .iter_mut()
            .map(|s| s as &mut dyn TraceSource)
            .collect();
        SmtSim::new(CycleSimConfig::default()).run(dyns, 0, per_thread)
    }

    #[test]
    fn single_thread_smt_behaves() {
        let t = micro::independent_misses(4, 2);
        let r = smt_run(vec![t.clone()], t.len() as u64);
        assert_eq!(r.insts, vec![t.len() as u64]);
        assert_eq!(r.offchip.dmiss, 4);
        assert!(r.mlp() > 2.0);
    }

    #[test]
    fn two_chasing_threads_overlap_each_other() {
        // Each thread's chase is serial (MLP 1), but two independent
        // chases overlap: combined MLP approaches 2 — the multithreading
        // hypothesis of the paper's future work.
        let t = micro::pointer_chase(8, 2);
        let solo = smt_run(vec![t.clone()], t.len() as u64);
        let duo = smt_run(vec![t.clone(), t.clone()], t.len() as u64);
        assert!(solo.mlp() < 1.2, "solo chase MLP {:.2}", solo.mlp());
        assert!(
            duo.mlp() > 1.5,
            "two chases should overlap (combined MLP {:.2})",
            duo.mlp()
        );
        assert_eq!(duo.insts.iter().sum::<u64>(), 2 * t.len() as u64);
    }

    #[test]
    fn threads_do_not_share_address_space() {
        // Identical traces in both threads: the ASID tag must keep their
        // lines distinct, so each thread misses on its own copy.
        let t = micro::independent_misses(3, 2);
        let duo = smt_run(vec![t.clone(), t.clone()], t.len() as u64);
        assert_eq!(duo.offchip.dmiss, 6, "both threads must miss separately");
    }

    #[test]
    fn throughput_gains_from_smt() {
        // Two memory-bound threads finish far sooner together than
        // sequentially (latency overlap), though slower than one alone.
        let t = micro::pointer_chase(6, 4);
        let solo = smt_run(vec![t.clone()], t.len() as u64);
        let duo = smt_run(vec![t.clone(), t.clone()], t.len() as u64);
        assert!(duo.cycles < 2 * solo.cycles, "SMT must beat back-to-back");
        assert!(duo.ipc() > solo.ipc() * 1.3);
    }

    #[test]
    #[should_panic(expected = "1..=8 SMT threads")]
    fn zero_threads_rejected() {
        let _ = SmtSim::new(CycleSimConfig::default()).run(vec![], 0, 10);
    }
}
