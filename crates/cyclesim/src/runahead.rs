//! Runahead execution in the *timing* domain.
//!
//! The paper models runahead only in MLPsim — its cycle-accurate
//! simulator predates the technique. This module closes that gap: a
//! cycle-level machine that, when the ROB head blocks on an off-chip
//! load, pseudo-retires speculatively past it (Mutlu et al.'s runahead):
//! missing loads become prefetches with *poisoned* (INV) destinations,
//! dependents of poison execute as poison, stores are dropped, and
//! serializing instructions lose their drain semantics. When the
//! blocking load's data returns, the pipeline flushes and re-executes
//! from the trigger — whose lines are now on chip.
//!
//! Because the trace is the architectural path, re-execution is a
//! *replay*: every instruction consumed while running ahead is kept and
//! re-dispatched after the flush. No rename checkpoint is needed: by the
//! time the trigger's data returns, every pre-trigger producer has
//! retired, so post-flush rename state is simply "all architectural".
//!
//! This makes the epoch model's headline claim testable in time: the
//! measured speedup of runahead over the conventional core can be
//! compared against the CPI-equation prediction built from MLPsim's MLP
//! (the `rae-timing` experiment).

use crate::{CycleReport, CycleSimConfig};
use mlp_hash::FxHashMap;
use mlp_isa::{line_of, Inst, OpKind, Reg, TraceSource};
use mlp_mem::{Access, Hierarchy, Mshr, MshrOutcome};
use mlp_obs::{IntervalSampler, LocalHist, Value};
use mlp_predict::{
    BranchObserver, BranchPredictor, BranchStats, LastValuePredictor, PerfectBranchPredictor,
    PerfectValuePredictor, ValueObserver, ValuePrediction,
};
use mlpsim::{BranchMode, OffchipCounts, ValueMode};
use std::collections::{BTreeMap, VecDeque};

#[derive(Clone, Debug)]
struct Entry {
    inst: Inst,
    producers: [Option<u64>; 3],
    /// Poison inherited from *architectural* sources, captured at
    /// dispatch (an in-flight producer's poison is checked at issue).
    arch_poison: bool,
    mispredicted: bool,
    issued: bool,
    completed: bool,
    poisoned: bool,
    complete_at: u64,
}

enum Branches {
    Real(BranchPredictor),
    Perfect(PerfectBranchPredictor),
}

impl Branches {
    fn observe(&mut self, inst: &Inst) -> bool {
        match self {
            Branches::Real(p) => p.observe(inst),
            Branches::Perfect(p) => p.observe(inst),
        }
    }
    fn stats(&self) -> BranchStats {
        match self {
            Branches::Real(p) => p.stats(),
            Branches::Perfect(p) => p.stats(),
        }
    }
}

/// A cycle-level core with runahead execution.
///
/// # Examples
///
/// ```no_run
/// use mlp_cyclesim::{runahead::RunaheadSim, CycleSimConfig};
/// use mlp_workloads::{Workload, WorkloadKind};
///
/// let mut wl = Workload::new(WorkloadKind::Database, 42);
/// let report = RunaheadSim::new(CycleSimConfig::default(), 2048)
///     .run(&mut wl, 100_000, 400_000);
/// println!("CPI with runahead: {:.2}", report.cpi());
/// ```
#[derive(Debug)]
pub struct RunaheadSim {
    config: CycleSimConfig,
    max_dist: usize,
    value: ValueMode,
}

impl RunaheadSim {
    /// Creates a runahead core with the given base configuration and
    /// maximum runahead distance in instructions (the paper uses 2048).
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`CycleSimConfig::validate`] or
    /// `max_dist` is zero.
    pub fn new(config: CycleSimConfig, max_dist: usize) -> RunaheadSim {
        config.validate();
        assert!(max_dist > 0, "runahead distance must be non-zero");
        RunaheadSim {
            config,
            max_dist,
            value: ValueMode::None,
        }
    }

    /// Adds missing-load value prediction (the paper's §5.5 mechanism,
    /// recovery-free inside runahead): a correctly predicted missing load
    /// keeps a *valid* destination, so its dependents can compute real
    /// addresses and prefetch deeper.
    #[must_use]
    pub fn with_value_prediction(mut self, mode: ValueMode) -> RunaheadSim {
        self.value = mode;
        self
    }

    /// Runs the core over `trace` with `warmup` uncounted retired
    /// instructions followed by up to `measure` measured ones.
    pub fn run<T: TraceSource>(&mut self, trace: &mut T, warmup: u64, measure: u64) -> CycleReport {
        let cfg = &self.config;
        let mut hierarchy = Hierarchy::new(cfg.hierarchy);
        let mut mshr = Mshr::new(cfg.mshrs, cfg.mem_latency);
        let mut branches = match cfg.branch {
            BranchMode::Real(c) => Branches::Real(BranchPredictor::new(c)),
            BranchMode::Perfect => Branches::Perfect(PerfectBranchPredictor::new()),
        };
        enum Values {
            Off,
            Last(LastValuePredictor),
            Perfect(PerfectValuePredictor),
        }
        let mut values = match self.value {
            ValueMode::None => Values::Off,
            ValueMode::LastValue(n) | ValueMode::Stride(n) | ValueMode::Hybrid(n) => {
                // The timing model carries the last-value table; the
                // stride/hybrid variants matter only in the epoch model's
                // ablation and behave identically on these workloads.
                Values::Last(LastValuePredictor::new(n))
            }
            ValueMode::Perfect => Values::Perfect(PerfectValuePredictor::new()),
        };
        let mut predict = |pc: u64, actual: u64| -> bool {
            match &mut values {
                Values::Off => false,
                Values::Last(p) => p.observe(pc, actual) == ValuePrediction::Correct,
                Values::Perfect(p) => p.observe(pc, actual) == ValuePrediction::Correct,
            }
        };

        let mut now: u64 = 0;
        // Front end: instructions flow replay -> fetch queue -> dispatch.
        let mut replay: VecDeque<Inst> = VecDeque::new();
        let mut fetch_queue: VecDeque<(Inst, bool)> = VecDeque::with_capacity(cfg.fetch_buffer + 1);
        let mut pending_fetch: Option<Inst> = None;
        let mut fetch_stall_until: u64 = 0;
        let mut awaiting_redirect = false;
        let mut last_ifetch_line = u64::MAX;
        let mut trace_done = false;
        let mut fetched_trace: u64 = 0;
        // Back end.
        let mut rob: VecDeque<Entry> = VecDeque::with_capacity(cfg.rob.min(1 << 14));
        let mut head_seq: u64 = 0;
        let mut next_seq: u64 = 0;
        let mut unissued: usize = 0;
        let mut last_writer = [0u64; Reg::COUNT];
        let mut poison_regs = [false; Reg::COUNT];
        let mut store_pending: FxHashMap<u64, u64> = mlp_hash::map_with_capacity(1024);
        let mut serialize_block = false;
        let mut completions: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        let mut outstanding: BTreeMap<u64, u32> = BTreeMap::new();
        // Runahead mode. `ra_source` feeds runahead fetch before the live
        // trace; `ra_replay` accumulates every instruction processed
        // speculatively, for re-execution after the flush.
        let mut runahead_exit: Option<u64> = None; // cycle the trigger returns
        let mut ra_dist: usize = 0;
        let mut ra_source: VecDeque<Inst> = VecDeque::new();
        let mut ra_replay: VecDeque<Inst> = VecDeque::new();
        // Accounting.
        let mut retired: u64 = 0;
        let limit = warmup.saturating_add(measure);
        let mut measuring = warmup == 0;
        let mut measure_start: u64 = 0;
        let mut offchip = OffchipCounts::default();
        let mut mlp_weighted: u64 = 0;
        let mut active_cycles: u64 = 0;
        let branch_base = BranchStats::default();
        let mut idle: u64 = 0;
        let mut stall_cycles: u64 = 0;
        let mut ra_entries: u64 = 0;
        let mut ra_exits: u64 = 0;
        let obs_armed = mlp_obs::counters_on();
        let mut stall_burst = LocalHist::new();
        let mut cur_burst: u64 = 0;
        let mut episode = LocalHist::new();
        let mut episode_start: u64 = 0;
        let mut sampler = IntervalSampler::armed("cyclesim.sample");
        // Reused across cycles so the issue scan does not allocate.
        let mut decisions: Vec<u64> = Vec::with_capacity(cfg.issue_width);

        'outer: loop {
            if retired >= limit
                || (trace_done
                    && runahead_exit.is_none()
                    && replay.is_empty()
                    && ra_source.is_empty()
                    && ra_replay.is_empty()
                    && fetch_queue.is_empty()
                    && pending_fetch.is_none()
                    && rob.is_empty())
            {
                break 'outer;
            }
            mshr.expire(now);
            // Complete.
            while let Some((&k, _)) = completions.iter().next() {
                if k > now {
                    break;
                }
                for seq in completions.remove(&k).expect("key just read") {
                    if seq >= head_seq {
                        rob[(seq - head_seq) as usize].completed = true;
                    }
                }
            }
            let mut worked = false;
            let in_runahead = runahead_exit.is_some();

            // Runahead exit: the trigger's data has arrived. Flush all
            // speculative state and replay from the trigger; rename state
            // is purely architectural at this point (every pre-trigger
            // producer retired before runahead began).
            if let Some(exit_at) = runahead_exit {
                if now >= exit_at {
                    rob.clear();
                    head_seq = next_seq;
                    unissued = 0;
                    last_writer = [0; Reg::COUNT];
                    poison_regs = [false; Reg::COUNT];
                    store_pending.clear();
                    completions.clear();
                    serialize_block = false;
                    // Everything consumed speculatively — including what
                    // still sits in the fetch queue — was copied into
                    // ra_replay at fetch time; drop the duplicates. An
                    // instruction parked on an I-miss (`pending_fetch`)
                    // was *not* yet copied, so it follows, then any
                    // unreached source.
                    fetch_queue.clear();
                    if let Some(i) = pending_fetch.take() {
                        ra_replay.push_back(i);
                    }
                    ra_replay.append(&mut ra_source);
                    // The replay stream now feeds normal-mode fetch.
                    ra_replay.append(&mut replay);
                    replay = std::mem::take(&mut ra_replay);
                    awaiting_redirect = false;
                    fetch_stall_until = now + cfg.mispredict_penalty; // refill
                    last_ifetch_line = u64::MAX;
                    runahead_exit = None;
                    ra_dist = 0;
                    ra_exits += 1;
                    if obs_armed {
                        episode.record(now.saturating_sub(episode_start));
                    }
                    worked = true;
                }
            }

            // Retire (normal) / pseudo-retire (runahead).
            let mut k = 0;
            while k < cfg.retire_width && runahead_exit.is_some() == in_runahead {
                let Some(e) = rob.front() else { break };
                if in_runahead {
                    // Pseudo-retire anything complete, or any issued
                    // memory read still in flight (it is a prefetch with a
                    // poisoned destination in runahead).
                    let can = e.completed
                        || (e.issued && e.inst.kind.reads_memory() && e.complete_at > now);
                    if !can {
                        break;
                    }
                    let e = rob.pop_front().expect("checked");
                    head_seq += 1;
                    let poisoned = e.poisoned || !e.completed;
                    if let Some(dst) = e.inst.dep_dst() {
                        poison_regs[dst.index()] = poisoned;
                    }
                    ra_dist += 1;
                    k += 1;
                    worked = true;
                } else {
                    if !e.completed {
                        break;
                    }
                    let e = rob.pop_front().expect("checked");
                    head_seq += 1;
                    if e.inst.kind.writes_memory() {
                        if let Some(m) = e.inst.mem {
                            let _ = hierarchy.store(m.addr);
                        }
                    }
                    if e.inst.is_serializing() {
                        serialize_block = false;
                    }
                    retired += 1;
                    if retired == warmup && !measuring {
                        measuring = true;
                        measure_start = now;
                        hierarchy.reset_stats();
                    }
                    k += 1;
                    worked = true;
                    if retired >= limit {
                        break 'outer;
                    }
                }
            }

            // Enter runahead: the head blocks on an off-chip read.
            if runahead_exit.is_none() {
                let enter = rob.front().is_some_and(|h| {
                    h.issued
                        && !h.completed
                        && h.inst.kind.reads_memory()
                        && h.complete_at > now + cfg.l2_latency
                });
                if enter {
                    let trigger = rob.front().expect("head");
                    runahead_exit = Some(trigger.complete_at);
                    ra_dist = 0;
                    ra_entries += 1;
                    episode_start = now;
                    // The post-exit replay starts with the trigger (its
                    // line will be on chip by then).
                    ra_replay.clear();
                    ra_replay.push_back(trigger.inst);
                    // Younger in-flight instructions restart as the
                    // runahead stream (their cache accesses are already
                    // accounted; results are speculative anyway). Their
                    // destinations become poison if their values were
                    // still in flight.
                    ra_source.clear();
                    let mut drained = rob.drain(..);
                    let trig = drained.next().expect("trigger drained");
                    if let Some(dst) = trig.inst.dep_dst() {
                        // The trigger's value is unknown for the whole
                        // interval — unless the value predictor supplies
                        // it (§5.5: the case that unblocks dependent
                        // missing loads).
                        let predicted = trig.inst.kind == OpKind::Load
                            && predict(trig.inst.pc, trig.inst.value);
                        poison_regs[dst.index()] = !predicted;
                    }
                    for e in drained {
                        ra_source.push_back(e.inst);
                    }
                    fetch_queue
                        .drain(..)
                        .for_each(|(i, _)| ra_source.push_back(i));
                    if let Some(i) = pending_fetch.take() {
                        ra_source.push_back(i);
                    }
                    // If a replay from a previous interval was still being
                    // consumed, it follows the in-flight stream.
                    ra_source.append(&mut replay);
                    head_seq = next_seq;
                    unissued = 0;
                    completions.clear();
                    serialize_block = false;
                    awaiting_redirect = false;
                    if fetch_stall_until == u64::MAX {
                        fetch_stall_until = now;
                    }
                    last_ifetch_line = u64::MAX;
                    worked = true;
                }
            }

            // Issue.
            let in_runahead = runahead_exit.is_some();
            decisions.clear();
            {
                let mut branch_ok = true;
                for (i, e) in rob.iter().enumerate() {
                    if decisions.len() >= cfg.issue_width {
                        break;
                    }
                    if e.issued {
                        continue;
                    }
                    let seq = head_seq + i as u64;
                    let ready = e.producers.iter().flatten().all(|&p| {
                        if p < head_seq {
                            true
                        } else {
                            let pe = &rob[(p - head_seq) as usize];
                            pe.completed || (in_runahead && pe.poisoned)
                        }
                    });
                    let mut can = ready;
                    if e.inst.is_branch() && !branch_ok && cfg.issue.branches_in_order() {
                        can = false;
                    }
                    if can && e.inst.kind.reads_memory() && !in_runahead {
                        if let Some(m) = e.inst.mem {
                            if let Some(&sseq) = store_pending.get(&(m.addr & !7)) {
                                if sseq >= head_seq
                                    && sseq < seq
                                    && !rob[(sseq - head_seq) as usize].issued
                                {
                                    can = false;
                                }
                            }
                            let l = line_of(m.addr);
                            if !mshr.is_pending(l)
                                && !hierarchy.probe_l2(m.addr)
                                && mshr.outstanding() >= cfg.mshrs
                            {
                                can = false;
                            }
                        }
                    }
                    if can {
                        decisions.push(seq);
                    }
                    if e.inst.is_branch() && !can {
                        branch_ok = false;
                    }
                }
            }
            for &seq in &decisions {
                worked = true;
                let idx = (seq - head_seq) as usize;
                let (inst, mispredicted, poisoned_in) = {
                    let e = &rob[idx];
                    // producers[j] aligns with dep_srcs().nth(j): a
                    // producer that pseudo-retired between dispatch and
                    // issue left its poison in poison_regs[its dst] = the
                    // source register itself.
                    let producer_poison =
                        e.inst
                            .dep_srcs()
                            .enumerate()
                            .any(|(j, r)| match e.producers[j] {
                                Some(p) if p >= head_seq => rob[(p - head_seq) as usize].poisoned,
                                Some(_) => poison_regs[r.index()],
                                None => false,
                            });
                    (e.inst, e.mispredicted, e.arch_poison || producer_poison)
                };
                let poisoned_in = in_runahead && poisoned_in;
                let mut poisoned_out = in_runahead && poisoned_in;
                let complete_at = match inst.kind {
                    OpKind::Load | OpKind::Atomic | OpKind::Prefetch => {
                        if in_runahead && poisoned_in {
                            now + 1 // INV address: skip
                        } else if let Some(m) = inst.mem {
                            let l = line_of(m.addr);
                            if mshr.is_pending(l) {
                                let ready = mshr.ready_at(l).expect("pending");
                                if in_runahead || inst.kind == OpKind::Prefetch {
                                    poisoned_out = in_runahead;
                                    now + 1
                                } else {
                                    ready
                                }
                            } else {
                                match hierarchy.load(m.addr) {
                                    Access::L1Hit => now + cfg.l1_latency,
                                    Access::L2Hit => now + cfg.l2_latency,
                                    Access::L3Hit => {
                                        let ready = now + cfg.l3_latency;
                                        if fetched_trace > warmup {
                                            offchip.dmiss += 1;
                                        }
                                        *outstanding.entry(ready).or_insert(0) += 1;
                                        if in_runahead {
                                            poisoned_out = true;
                                            now + 1
                                        } else {
                                            ready
                                        }
                                    }
                                    Access::OffChip => {
                                        if cfg.perfect_l2 {
                                            now + cfg.l2_latency
                                        } else {
                                            let ready = match mshr.request(l, now) {
                                                MshrOutcome::Primary { ready_at }
                                                | MshrOutcome::Merged { ready_at } => ready_at,
                                                MshrOutcome::Full => now + cfg.mem_latency,
                                            };
                                            if fetched_trace > warmup {
                                                if in_runahead {
                                                    offchip.pmiss += 1; // runahead prefetch
                                                } else {
                                                    match inst.kind {
                                                        OpKind::Prefetch => offchip.pmiss += 1,
                                                        _ => offchip.dmiss += 1,
                                                    }
                                                }
                                            }
                                            *outstanding.entry(ready).or_insert(0) += 1;
                                            if in_runahead || inst.kind == OpKind::Prefetch {
                                                // A correctly predicted
                                                // missing value keeps the
                                                // destination valid inside
                                                // runahead (§5.5).
                                                let predicted = in_runahead
                                                    && inst.kind == OpKind::Load
                                                    && predict(inst.pc, inst.value);
                                                poisoned_out = in_runahead && !predicted;
                                                now + 1
                                            } else {
                                                ready
                                            }
                                        }
                                    }
                                }
                            }
                        } else {
                            now + 1
                        }
                    }
                    OpKind::Branch(_) => {
                        let t = now + 1;
                        if mispredicted {
                            if in_runahead && poisoned_in {
                                // Unresolvable in runahead: the wrong path
                                // cannot be repaired; stop fetching until
                                // the runahead interval ends.
                                fetch_stall_until = runahead_exit.unwrap_or(t);
                            } else {
                                fetch_stall_until = t + cfg.mispredict_penalty;
                            }
                            awaiting_redirect = false;
                        }
                        t
                    }
                    _ => now + 1,
                };
                let e = &mut rob[idx];
                e.issued = true;
                e.poisoned = poisoned_out;
                e.complete_at = complete_at;
                unissued -= 1;
                completions.entry(complete_at).or_default().push(seq);
            }

            // Dispatch.
            let mut k = 0;
            while k < cfg.dispatch_width
                && !serialize_block
                && rob.len() < cfg.rob
                && unissued < cfg.iw
            {
                let Some(&(ref inst, mispredicted)) = fetch_queue.front() else {
                    break;
                };
                let serializing = inst.is_serializing() && cfg.issue.serializing() && !in_runahead;
                if serializing && !rob.is_empty() {
                    break;
                }
                let inst = *inst;
                fetch_queue.pop_front();
                let seq = next_seq;
                next_seq += 1;
                let mut producers = [None; 3];
                let mut arch_poison = false;
                for (j, src) in inst.dep_srcs().enumerate() {
                    let w = last_writer[src.index()];
                    if w > head_seq {
                        producers[j] = Some(w - 1);
                    } else if poison_regs[src.index()] {
                        // Architectural source whose last (pseudo-retired)
                        // writer was poisoned.
                        arch_poison = true;
                    }
                }
                if let Some(dst) = inst.dep_dst() {
                    last_writer[dst.index()] = seq + 1;
                }
                if inst.kind.writes_memory() && !in_runahead {
                    if let Some(m) = inst.mem {
                        store_pending.insert(m.addr & !7, seq);
                        if store_pending.len() > 1 << 14 {
                            store_pending.retain(|_, &mut s| s >= head_seq);
                        }
                    }
                }
                rob.push_back(Entry {
                    inst,
                    producers,
                    arch_poison,
                    mispredicted,
                    issued: false,
                    completed: false,
                    poisoned: false,
                    complete_at: u64::MAX,
                });
                unissued += 1;
                if serializing {
                    serialize_block = true;
                }
                k += 1;
                worked = true;
            }

            // Fetch: pending I-miss first, then (in runahead) the
            // speculative source, then the replay stream, then the trace.
            let in_runahead = runahead_exit.is_some();
            if !awaiting_redirect && now >= fetch_stall_until {
                let mut f = 0;
                while f < cfg.fetch_width && fetch_queue.len() < cfg.fetch_buffer {
                    if in_runahead && ra_dist + rob.len() + fetch_queue.len() >= self.max_dist {
                        break; // runahead distance cap
                    }
                    let sourced = if let Some(i) = pending_fetch.take() {
                        Some(i)
                    } else if in_runahead {
                        ra_source.pop_front()
                    } else {
                        replay.pop_front()
                    };
                    let inst = if let Some(i) = sourced {
                        // Re-fetched lines are warm (just fetched) — no
                        // I-cache classification needed.
                        i
                    } else {
                        if trace_done {
                            break;
                        }
                        let Some(i) = trace.next_inst() else {
                            trace_done = true;
                            break;
                        };
                        fetched_trace += 1;
                        let linea = line_of(i.pc);
                        if linea != last_ifetch_line {
                            last_ifetch_line = linea;
                            let arrives = match hierarchy.ifetch(i.pc) {
                                Access::L1Hit => None,
                                Access::L2Hit => Some(now + cfg.l2_latency),
                                Access::L3Hit => {
                                    let ready = now + cfg.l3_latency;
                                    if fetched_trace > warmup {
                                        offchip.imiss += 1;
                                    }
                                    *outstanding.entry(ready).or_insert(0) += 1;
                                    Some(ready)
                                }
                                Access::OffChip => {
                                    if cfg.perfect_l2 {
                                        Some(now + cfg.l2_latency)
                                    } else {
                                        let ready = match mshr.request(linea, now) {
                                            MshrOutcome::Primary { ready_at }
                                            | MshrOutcome::Merged { ready_at } => ready_at,
                                            MshrOutcome::Full => now + cfg.mem_latency,
                                        };
                                        if fetched_trace > warmup {
                                            offchip.imiss += 1;
                                        }
                                        *outstanding.entry(ready).or_insert(0) += 1;
                                        Some(ready)
                                    }
                                }
                            };
                            if let Some(at) = arrives {
                                fetch_stall_until = at;
                                pending_fetch = Some(i);
                                break;
                            }
                        }
                        i
                    };
                    if in_runahead {
                        // Everything consumed speculatively replays later.
                        ra_replay.push_back(inst);
                    }
                    let mispredicted = if inst.is_branch() {
                        branches.observe(&inst)
                    } else {
                        false
                    };
                    fetch_queue.push_back((inst, mispredicted));
                    f += 1;
                    worked = true;
                    if mispredicted {
                        awaiting_redirect = true;
                        fetch_stall_until = u64::MAX;
                        break;
                    }
                }
            }

            // Clock.
            let next = if worked {
                now + 1
            } else {
                let mut c: Vec<u64> = Vec::new();
                if let Some((&t, _)) = completions.iter().next() {
                    c.push(t);
                }
                if let Some((&t, _)) = outstanding.iter().next() {
                    c.push(t);
                }
                if let Some(e) = runahead_exit {
                    c.push(e);
                }
                if fetch_stall_until > now && fetch_stall_until != u64::MAX {
                    c.push(fetch_stall_until);
                }
                c.into_iter().min().unwrap_or(now + 1).max(now + 1)
            };
            let mut t0 = now;
            while t0 < next {
                let size: u32 = outstanding.values().sum();
                let b = outstanding
                    .keys()
                    .next()
                    .copied()
                    .filter(|&x| x < next)
                    .unwrap_or(next)
                    .max(t0 + 1);
                if size > 0 && measuring {
                    active_cycles += b - t0;
                    mlp_weighted += size as u64 * (b - t0);
                }
                t0 = b;
                while let Some((&x, _)) = outstanding.iter().next() {
                    if x <= t0 {
                        outstanding.remove(&x);
                    } else {
                        break;
                    }
                }
            }
            if !worked && measuring {
                stall_cycles += next - now;
                if obs_armed {
                    cur_burst += next - now;
                }
            }
            if worked && cur_burst > 0 {
                stall_burst.record(cur_burst);
                cur_burst = 0;
            }
            now = next;
            let pos = retired.saturating_sub(warmup);
            if sampler.as_ref().is_some_and(|s| s.due(pos)) {
                let fields = [
                    ("cycles", Value::U64(now.saturating_sub(measure_start))),
                    ("offchip", Value::U64(offchip.total())),
                    ("mshr", Value::U64(mshr.outstanding() as u64)),
                    ("mlp_weighted", Value::U64(mlp_weighted)),
                    ("active_cycles", Value::U64(active_cycles)),
                ];
                if let Some(s) = sampler.as_mut() {
                    s.record(pos, &fields);
                }
            }
            if worked {
                idle = 0;
            } else {
                idle += 1;
                assert!(
                    idle < 100 * cfg.mem_latency + 1_000_000,
                    "runahead pipeline stuck at cycle {now}"
                );
            }
        }

        if cur_burst > 0 {
            stall_burst.record(cur_burst);
        }
        if sampler.is_some() {
            let pos = retired.saturating_sub(warmup);
            let fields = [
                ("cycles", Value::U64(now.saturating_sub(measure_start))),
                ("offchip", Value::U64(offchip.total())),
                ("mshr", Value::U64(mshr.outstanding() as u64)),
                ("mlp_weighted", Value::U64(mlp_weighted)),
                ("active_cycles", Value::U64(active_cycles)),
            ];
            if let Some(s) = sampler.as_mut() {
                s.finish(pos, &fields);
            }
        }
        let b = branches.stats();
        let report = CycleReport {
            cycles: now.saturating_sub(measure_start),
            insts: retired.saturating_sub(warmup),
            offchip,
            mlp_weighted_cycles: mlp_weighted,
            active_cycles,
            branch_stats: BranchStats {
                branches: b.branches - branch_base.branches,
                mispredicts: b.mispredicts - branch_base.mispredicts,
            },
            fm_weighted_cycles: 0,
            fm_active_cycles: 0,
        };
        crate::obs::flush_run(
            &report,
            crate::obs::RunObs {
                stall_cycles,
                mshr_high_water: mshr.high_water() as u64,
                runahead_entries: ra_entries,
                runahead_exits: ra_exits,
                stall_burst,
                runahead_episode: episode,
            },
        );
        hierarchy.flush_obs();
        mshr.flush_obs();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CycleSim;
    use mlp_isa::SliceTrace;
    use mlp_workloads::micro;

    fn run_warm(trace: &[Inst], max_dist: usize) -> CycleReport {
        let max_hot_pc = trace
            .iter()
            .map(|i| i.pc)
            .filter(|&pc| pc < 0x8000_0000)
            .max()
            .unwrap_or(micro::PC_BASE);
        let mut full: Vec<Inst> = (micro::PC_BASE..=max_hot_pc)
            .step_by(4)
            .map(Inst::nop)
            .collect();
        let warm = full.len() as u64;
        full.extend_from_slice(trace);
        RunaheadSim::new(CycleSimConfig::default(), max_dist).run(
            &mut SliceTrace::new(&full),
            warm,
            u64::MAX,
        )
    }

    #[test]
    fn every_instruction_retires_exactly_once() {
        let t = micro::independent_misses(6, 3);
        let r = run_warm(&t, 2048);
        assert_eq!(r.insts, t.len() as u64);
    }

    #[test]
    fn runahead_overlaps_window_limited_misses() {
        // 20 independent misses, 4 insts apart: a 6-entry window overlaps
        // barely 2 at a time conventionally; runahead overlaps them all.
        let t = micro::independent_misses(20, 3);
        let mut conv_cfg = CycleSimConfig::default().with_window(6);
        conv_cfg.iw = 6;
        let max_hot_pc = t.iter().map(|i| i.pc).max().unwrap();
        let mut full: Vec<Inst> = (micro::PC_BASE..=max_hot_pc)
            .step_by(4)
            .map(Inst::nop)
            .collect();
        let warm = full.len() as u64;
        full.extend_from_slice(&t);
        let conv = CycleSim::new(conv_cfg.clone()).run(&mut SliceTrace::new(&full), warm, u64::MAX);
        let rae = RunaheadSim::new(conv_cfg, 2048).run(&mut SliceTrace::new(&full), warm, u64::MAX);
        assert!(
            rae.cycles < conv.cycles,
            "runahead {} cycles vs conventional {}",
            rae.cycles,
            conv.cycles
        );
        assert!(
            rae.mlp() > conv.mlp() + 0.5,
            "runahead MLP {:.2} vs conventional {:.2}",
            rae.mlp(),
            conv.mlp()
        );
    }

    #[test]
    fn pointer_chase_gains_nothing() {
        // Dependent misses: runahead's extra prefetches are poisoned, so
        // it cannot beat the conventional core by much.
        let t = micro::pointer_chase(6, 2);
        let conv = {
            let max_hot_pc = t.iter().map(|i| i.pc).max().unwrap();
            let mut full: Vec<Inst> = (micro::PC_BASE..=max_hot_pc)
                .step_by(4)
                .map(Inst::nop)
                .collect();
            let warm = full.len() as u64;
            full.extend_from_slice(&t);
            CycleSim::new(CycleSimConfig::default()).run(
                &mut SliceTrace::new(&full),
                warm,
                u64::MAX,
            )
        };
        let rae = run_warm(&t, 2048);
        assert_eq!(rae.offchip.total(), conv.offchip.total());
        assert!(rae.cycles >= conv.cycles * 9 / 10);
        assert!(rae.mlp() < 1.2);
    }

    #[test]
    fn runahead_speculates_past_serializers() {
        // membar-separated misses: conventional serializes, runahead
        // prefetches past the barriers.
        let t = micro::serialized_misses(6);
        let conv = {
            let max_hot_pc = t.iter().map(|i| i.pc).max().unwrap();
            let mut full: Vec<Inst> = (micro::PC_BASE..=max_hot_pc)
                .step_by(4)
                .map(Inst::nop)
                .collect();
            let warm = full.len() as u64;
            full.extend_from_slice(&t);
            CycleSim::new(CycleSimConfig::default()).run(
                &mut SliceTrace::new(&full),
                warm,
                u64::MAX,
            )
        };
        let rae = run_warm(&t, 2048);
        assert!(
            rae.cycles * 2 < conv.cycles * 3, // at least ~1.5x faster
            "runahead {} vs conventional {}",
            rae.cycles,
            conv.cycles
        );
        assert!(rae.mlp() > conv.mlp());
    }

    #[test]
    fn distance_cap_limits_the_benefit() {
        let t = micro::independent_misses(30, 4);
        let short = run_warm(&t, 8);
        let long = run_warm(&t, 2048);
        assert!(long.mlp() > short.mlp());
        assert!(long.cycles <= short.cycles);
    }
}
