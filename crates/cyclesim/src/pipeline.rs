//! The cycle-level pipeline model.
//!
//! A single clock drives five stages — fetch, dispatch, issue, complete,
//! retire — over explicit ROB/issue-window/fetch-buffer structures. The
//! clock *skips* dead time: when a cycle performs no work, it jumps to the
//! next event (a completion, an MSHR fill, a fetch redirect), which makes
//! thousand-cycle off-chip stalls cheap to simulate while preserving
//! exact cycle accounting.

use crate::{CycleReport, CycleSimConfig};
use mlp_hash::FxHashMap;
use mlp_isa::{line_of, Inst, OpKind, Reg, TraceSource};
use mlp_mem::{Access, Hierarchy, Mshr, MshrOutcome};
use mlp_obs::{IntervalSampler, LocalHist, Value};
use mlp_predict::{BranchObserver, BranchPredictor, BranchStats, PerfectBranchPredictor};
use mlpsim::{BranchMode, OffchipCounts};
use std::collections::{BTreeMap, VecDeque};

#[derive(Clone, Debug)]
struct Entry {
    kind: OpKind,
    producers: [Option<u64>; 3],
    mem_addr: Option<u64>,
    mispredicted: bool,
    issued: bool,
    completed: bool,
    complete_at: u64,
}

enum Branches {
    Real(BranchPredictor),
    Perfect(PerfectBranchPredictor),
}

impl Branches {
    fn observe(&mut self, inst: &Inst) -> bool {
        match self {
            Branches::Real(p) => p.observe(inst),
            Branches::Perfect(p) => p.observe(inst),
        }
    }

    fn stats(&self) -> BranchStats {
        match self {
            Branches::Real(p) => p.stats(),
            Branches::Perfect(p) => p.stats(),
        }
    }
}

/// The cycle-accurate simulator.
///
/// # Examples
///
/// ```
/// use mlp_cyclesim::{CycleSim, CycleSimConfig};
/// use mlp_workloads::micro;
///
/// let trace = micro::pointer_chase(4, 1);
/// let report = CycleSim::new(CycleSimConfig::default())
///     .run(&mut mlp_isa::SliceTrace::new(&trace), 0, u64::MAX);
/// // Four serialized misses: at least 4 x 200 cycles.
/// assert!(report.cycles >= 800);
/// ```
#[derive(Debug)]
pub struct CycleSim {
    config: CycleSimConfig,
}

impl CycleSim {
    /// Creates a simulator for `config`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`CycleSimConfig::validate`].
    pub fn new(config: CycleSimConfig) -> CycleSim {
        config.validate();
        CycleSim { config }
    }

    /// The configuration being simulated.
    pub fn config(&self) -> &CycleSimConfig {
        &self.config
    }

    /// Runs the pipeline over `trace`: `warmup` retired instructions
    /// train the caches and predictors without counting, then up to
    /// `measure` instructions are measured (the run also ends at
    /// end-of-trace, after draining).
    pub fn run<T: TraceSource>(&mut self, trace: &mut T, warmup: u64, measure: u64) -> CycleReport {
        Machine::new(&self.config, trace, warmup, measure).run()
    }
}

struct Machine<'a, T> {
    cfg: &'a CycleSimConfig,
    trace: &'a mut T,
    hierarchy: Hierarchy,
    mshr: Mshr,
    branches: Branches,
    now: u64,
    // front end
    fetch_queue: VecDeque<(Inst, bool)>, // decoded, with mispredict flag
    pending_fetch: Option<Inst>,         // waiting for its I-line to arrive
    fetch_stall_until: u64,
    awaiting_redirect: bool,
    last_ifetch_line: u64,
    trace_done: bool,
    fetched: u64,
    // back end
    rob: VecDeque<Entry>,
    head_seq: u64,
    next_seq: u64,
    unissued: usize,
    last_writer: [u64; Reg::COUNT], // seq + 1; 0 = none
    store_fwd: FxHashMap<u64, u64>, // addr8 -> latest store seq
    serialize_block: Option<u64>,
    completions: BTreeMap<u64, Vec<u64>>,
    // Reused scratch for issue(), so the per-cycle scan does not allocate.
    decisions_scratch: Vec<u64>,
    planned_scratch: Vec<u64>,
    // MLP(t) integration (useful accesses) and fM (all transfers)
    outstanding: BTreeMap<u64, u32>,
    fm_outstanding: BTreeMap<u64, u32>,
    mlp_cursor: u64,
    // accounting
    retired: u64,
    warmup: u64,
    limit: u64,
    measuring: bool,
    measure_start_cycle: u64,
    offchip: OffchipCounts,
    mlp_weighted: u64,
    active_cycles: u64,
    fm_weighted: u64,
    fm_active: u64,
    branch_base: BranchStats,
}

impl<'a, T: TraceSource> Machine<'a, T> {
    fn new(cfg: &'a CycleSimConfig, trace: &'a mut T, warmup: u64, measure: u64) -> Self {
        Machine {
            cfg,
            trace,
            hierarchy: Hierarchy::new(cfg.hierarchy),
            mshr: Mshr::new(cfg.mshrs, cfg.mem_latency),
            branches: match cfg.branch {
                BranchMode::Real(c) => Branches::Real(BranchPredictor::new(c)),
                BranchMode::Perfect => Branches::Perfect(PerfectBranchPredictor::new()),
            },
            now: 0,
            fetch_queue: VecDeque::with_capacity(cfg.fetch_buffer + 1),
            pending_fetch: None,
            fetch_stall_until: 0,
            awaiting_redirect: false,
            last_ifetch_line: u64::MAX,
            trace_done: false,
            fetched: 0,
            rob: VecDeque::with_capacity(cfg.rob.min(1 << 14)),
            head_seq: 0,
            next_seq: 0,
            unissued: 0,
            last_writer: [0; Reg::COUNT],
            store_fwd: mlp_hash::map_with_capacity(1024),
            serialize_block: None,
            completions: BTreeMap::new(),
            decisions_scratch: Vec::with_capacity(64),
            planned_scratch: Vec::with_capacity(16),
            outstanding: BTreeMap::new(),
            fm_outstanding: BTreeMap::new(),
            mlp_cursor: 0,
            retired: 0,
            warmup,
            limit: warmup.saturating_add(measure),
            measuring: warmup == 0,
            measure_start_cycle: 0,
            offchip: OffchipCounts::default(),
            mlp_weighted: 0,
            active_cycles: 0,
            fm_weighted: 0,
            fm_active: 0,
            branch_base: BranchStats::default(),
        }
    }

    fn run(mut self) -> CycleReport {
        let mut last_progress = (0u64, 0u64); // (cycle, retired)
        let mut stall_cycles = 0u64;
        let obs_armed = mlp_obs::counters_on();
        let mut stall_burst = LocalHist::new();
        let mut cur_burst = 0u64;
        let mut sampler = IntervalSampler::armed("cyclesim.sample");
        loop {
            let worked = self.step();
            if self.finished() {
                break;
            }
            if worked {
                if cur_burst > 0 {
                    stall_burst.record(cur_burst);
                    cur_burst = 0;
                }
                self.advance_to(self.now + 1);
            } else {
                let next = self.next_event().unwrap_or(self.now + 1).max(self.now + 1);
                if self.measuring {
                    stall_cycles += next - self.now;
                    if obs_armed {
                        cur_burst += next - self.now;
                    }
                }
                self.advance_to(next);
            }
            let pos = self.retired.saturating_sub(self.warmup);
            if sampler.as_ref().is_some_and(|s| s.due(pos)) {
                let fields = self.sample_fields();
                if let Some(s) = sampler.as_mut() {
                    s.record(pos, &fields);
                }
            }
            // Deadlock detector: modelling bugs must fail loudly.
            if self.retired != last_progress.1 {
                last_progress = (self.now, self.retired);
            } else {
                assert!(
                    self.now - last_progress.0 < 20 * self.cfg.mem_latency + 100_000,
                    "pipeline stuck at cycle {} (head {:?})",
                    self.now,
                    self.rob.front()
                );
            }
        }
        if cur_burst > 0 {
            stall_burst.record(cur_burst);
        }
        if sampler.is_some() {
            let pos = self.retired.saturating_sub(self.warmup);
            let fields = self.sample_fields();
            if let Some(s) = sampler.as_mut() {
                s.finish(pos, &fields);
            }
        }
        let b = self.branches.stats();
        let report = CycleReport {
            cycles: self.now.saturating_sub(self.measure_start_cycle),
            insts: self.retired.saturating_sub(self.warmup),
            offchip: self.offchip,
            mlp_weighted_cycles: self.mlp_weighted,
            active_cycles: self.active_cycles,
            fm_weighted_cycles: self.fm_weighted,
            fm_active_cycles: self.fm_active,
            branch_stats: BranchStats {
                branches: b.branches - self.branch_base.branches,
                mispredicts: b.mispredicts - self.branch_base.mispredicts,
            },
        };
        crate::obs::flush_run(
            &report,
            crate::obs::RunObs {
                stall_cycles,
                mshr_high_water: self.mshr.high_water() as u64,
                runahead_entries: 0,
                runahead_exits: 0,
                stall_burst,
                runahead_episode: LocalHist::new(),
            },
        );
        self.hierarchy.flush_obs();
        self.mshr.flush_obs();
        report
    }

    /// Cumulative fields for one interval sample.
    fn sample_fields(&self) -> [(&'static str, Value<'static>); 5] {
        [
            (
                "cycles",
                Value::U64(self.now.saturating_sub(self.measure_start_cycle)),
            ),
            ("offchip", Value::U64(self.offchip.total())),
            ("mshr", Value::U64(self.mshr.outstanding() as u64)),
            ("mlp_weighted", Value::U64(self.mlp_weighted)),
            ("active_cycles", Value::U64(self.active_cycles)),
        ]
    }

    fn finished(&mut self) -> bool {
        if self.retired >= self.limit {
            return true;
        }
        self.trace_done
            && self.fetch_queue.is_empty()
            && self.pending_fetch.is_none()
            && self.rob.is_empty()
    }

    /// Executes one cycle; returns whether any stage made progress.
    fn step(&mut self) -> bool {
        self.mshr.expire(self.now);
        self.drain_completions();
        let retired = self.retire();
        let issued = self.issue();
        let dispatched = self.dispatch();
        let fetched = self.fetch();
        retired + issued + dispatched + fetched > 0
    }

    // ----- clock & MLP(t) integration ------------------------------------

    fn advance_to(&mut self, to: u64) {
        debug_assert!(to > self.now);
        let mut t = self.mlp_cursor.max(self.now);
        while t < to {
            let size: u32 = self.outstanding.values().sum();
            let fm_size: u32 = self.fm_outstanding.values().sum();
            let next_boundary = self
                .outstanding
                .keys()
                .next()
                .copied()
                .into_iter()
                .chain(self.fm_outstanding.keys().next().copied())
                .min()
                .filter(|&k| k < to)
                .unwrap_or(to);
            let seg_end = next_boundary.max(t + 1);
            let len = seg_end - t;
            if self.measuring {
                if size > 0 {
                    self.active_cycles += len;
                    self.mlp_weighted += size as u64 * len;
                }
                if fm_size > 0 {
                    self.fm_active += len;
                    self.fm_weighted += fm_size as u64 * len;
                }
            }
            t = seg_end;
            // Pop transfers completing at the boundary we just reached.
            while let Some((&k, _)) = self.outstanding.iter().next() {
                if k <= t {
                    self.outstanding.remove(&k);
                } else {
                    break;
                }
            }
            while let Some((&k, _)) = self.fm_outstanding.iter().next() {
                if k <= t {
                    self.fm_outstanding.remove(&k);
                } else {
                    break;
                }
            }
        }
        self.mlp_cursor = t;
        self.now = to;
    }

    fn next_event(&self) -> Option<u64> {
        let mut next = None;
        let mut consider = |t: u64| {
            if t > self.now {
                next = Some(next.map_or(t, |n: u64| n.min(t)));
            }
        };
        if let Some((&t, _)) = self.completions.iter().next() {
            consider(t);
        }
        if let Some((&t, _)) = self.outstanding.iter().next() {
            consider(t);
        }
        if self.fetch_stall_until > self.now && self.fetch_stall_until != u64::MAX {
            consider(self.fetch_stall_until);
        }
        next
    }

    fn note_outstanding(&mut self, ready_at: u64) {
        *self.outstanding.entry(ready_at).or_insert(0) += 1;
        self.note_fm(ready_at);
    }

    /// Tracks a transfer for the fM (all-outstanding) integral only.
    fn note_fm(&mut self, ready_at: u64) {
        *self.fm_outstanding.entry(ready_at).or_insert(0) += 1;
    }

    // ----- stages ---------------------------------------------------------

    fn drain_completions(&mut self) {
        while let Some((&k, _)) = self.completions.iter().next() {
            if k > self.now {
                break;
            }
            for seq in self.completions.remove(&k).expect("key just read") {
                if seq >= self.head_seq {
                    let idx = (seq - self.head_seq) as usize;
                    self.rob[idx].completed = true;
                }
            }
        }
    }

    fn retire(&mut self) -> usize {
        let mut n = 0;
        while n < self.cfg.retire_width {
            match self.rob.front() {
                Some(e) if e.completed => {}
                _ => break,
            }
            let e = self.rob.pop_front().expect("front checked");
            self.head_seq += 1;
            if e.kind.writes_memory() {
                if let Some(addr) = e.mem_addr {
                    // Write-allocate. An off-chip fill is hidden by the
                    // store buffer (not a useful access) but still an
                    // outstanding transfer for the fM metric.
                    if self.hierarchy.store(addr).is_off_chip() && !self.cfg.perfect_l2 {
                        let ready = self.now + self.cfg.mem_latency;
                        self.note_fm(ready);
                    }
                }
            }
            if self.serialize_block == Some(self.head_seq - 1) {
                self.serialize_block = None;
            }
            self.retired += 1;
            n += 1;
            if self.retired == self.warmup && !self.measuring {
                self.start_measuring();
            }
            if self.retired >= self.limit {
                break;
            }
        }
        n
    }

    fn start_measuring(&mut self) {
        self.measuring = true;
        self.measure_start_cycle = self.now;
        self.hierarchy.reset_stats();
        self.branch_base = self.branches.stats();
    }

    fn producer_ready(&self, seq: u64) -> bool {
        if seq < self.head_seq {
            return true;
        }
        self.rob[(seq - self.head_seq) as usize].completed
    }

    fn entry_ready(&self, e: &Entry) -> bool {
        e.producers
            .iter()
            .flatten()
            .all(|&p| self.producer_ready(p))
    }

    fn issue(&mut self) -> usize {
        let mut issued_now = 0;
        let mut mem_in_order_ok = true; // config A: memops must go oldest-first
        let mut branch_in_order_ok = true; // configs A-C
        let mut unissued_store_blocks_loads = false; // config B
        let head = self.head_seq;
        let loads_in_order = self.cfg.issue.loads_in_order();
        let wait_staddr = self.cfg.issue.loads_wait_store_addresses();

        // Collect issue decisions first (borrow discipline), apply after.
        let mut decisions = std::mem::take(&mut self.decisions_scratch);
        let mut planned_lines = std::mem::take(&mut self.planned_scratch);
        decisions.clear();
        planned_lines.clear();
        for (i, e) in self.rob.iter().enumerate() {
            if issued_now + decisions.len() >= self.cfg.issue_width {
                break;
            }
            if e.issued {
                continue;
            }
            let seq = head + i as u64;
            // Prefetches are hints and do not participate in config A's
            // in-order memory schedule (matching the epoch model).
            let is_mem = e.kind.is_memory();
            let is_branch = e.kind.is_branch();
            let ready = self.entry_ready(e);

            // Policy gates.
            let mut can = ready;
            if loads_in_order && is_mem && !mem_in_order_ok {
                can = false;
            }
            if is_branch && !branch_in_order_ok {
                can = false;
            }
            if wait_staddr && e.kind.reads_memory() && unissued_store_blocks_loads {
                can = false;
            }
            // True memory dependence: a load whose address matches an
            // older un-issued store must wait for the store.
            if can && e.kind.reads_memory() {
                if let Some(addr) = e.mem_addr {
                    if let Some(&sseq) = self.store_fwd.get(&(addr & !7)) {
                        if sseq >= head && sseq < seq {
                            let sidx = (sseq - head) as usize;
                            if !self.rob[sidx].issued {
                                can = false;
                            }
                        }
                    }
                }
            }
            // MSHR pressure: a load that needs a new off-chip transfer
            // cannot issue when the MSHR file is full (including transfers
            // other loads in this same cycle are about to start).
            if can && e.kind.reads_memory() && !self.cfg.perfect_l2 {
                if let Some(addr) = e.mem_addr {
                    let line = line_of(addr);
                    let needs_new = !self.mshr.is_pending(line)
                        && !self.hierarchy.probe_l2(addr)
                        && !planned_lines.contains(&line);
                    if needs_new {
                        if self.mshr.outstanding() + planned_lines.len() >= self.cfg.mshrs {
                            can = false;
                        } else {
                            planned_lines.push(line);
                        }
                    }
                }
            }

            if can {
                decisions.push(seq);
            }
            // Update in-order scan state for younger instructions.
            if is_mem && loads_in_order && !can {
                mem_in_order_ok = false;
            }
            if is_branch && !can {
                branch_in_order_ok = false;
            }
            if e.kind.writes_memory() && !can {
                unissued_store_blocks_loads = true;
            }
        }
        for &seq in &decisions {
            self.do_issue(seq);
            issued_now += 1;
        }
        self.decisions_scratch = decisions;
        self.planned_scratch = planned_lines;
        issued_now
    }

    fn do_issue(&mut self, seq: u64) {
        let idx = (seq - self.head_seq) as usize;
        let now = self.now;
        let (kind, mem_addr, mispredicted) = {
            let e = &self.rob[idx];
            (e.kind, e.mem_addr, e.mispredicted)
        };
        let complete_at = match kind {
            OpKind::Alu | OpKind::Nop | OpKind::Membar => now + 1,
            OpKind::Branch(_) => {
                let t = now + 1;
                if mispredicted {
                    // Redirect the stalled front end once resolved.
                    self.fetch_stall_until = t + self.cfg.mispredict_penalty;
                    self.awaiting_redirect = false;
                }
                t
            }
            OpKind::Store => now + 1,
            OpKind::Load | OpKind::Atomic | OpKind::Prefetch => {
                let addr = mem_addr.expect("memory op carries an address");
                self.memory_complete_time(kind, addr, seq)
            }
        };
        let e = &mut self.rob[idx];
        e.issued = true;
        e.complete_at = complete_at;
        self.unissued -= 1;
        self.completions.entry(complete_at).or_default().push(seq);
    }

    /// Timing (and MLP accounting) of a memory read issued at `now`.
    fn memory_complete_time(&mut self, kind: OpKind, addr: u64, seq: u64) -> u64 {
        let now = self.now;
        // Store-to-load forwarding from an older in-flight store.
        if kind != OpKind::Prefetch {
            if let Some(&sseq) = self.store_fwd.get(&(addr & !7)) {
                if sseq >= self.head_seq && sseq < seq {
                    let sidx = (sseq - self.head_seq) as usize;
                    let s = &self.rob[sidx];
                    debug_assert!(s.issued, "gated at issue");
                    return s.complete_at.max(now) + 1;
                }
            }
        }
        let line = line_of(addr);
        if !self.cfg.perfect_l2 && self.mshr.is_pending(line) {
            let ready = self.mshr.ready_at(line).expect("pending");
            return if kind == OpKind::Prefetch {
                now + 1
            } else {
                ready
            };
        }
        let access = self.hierarchy.load(addr);
        let data_at = match access {
            Access::L1Hit => now + self.cfg.l1_latency,
            Access::L2Hit => now + self.cfg.l2_latency,
            Access::L3Hit => {
                // An off-chip L3 hit is a (shorter) off-chip access: it
                // counts toward MLP and is outstanding for its latency.
                let ready = now + self.cfg.l3_latency;
                if seq >= self.warmup {
                    match kind {
                        OpKind::Prefetch => self.offchip.pmiss += 1,
                        _ => self.offchip.dmiss += 1,
                    }
                }
                self.note_outstanding(ready);
                ready
            }
            Access::OffChip => {
                if self.cfg.perfect_l2 {
                    now + self.cfg.l2_latency
                } else {
                    match self.mshr.request(line, now) {
                        MshrOutcome::Primary { ready_at } | MshrOutcome::Merged { ready_at } => {
                            if seq >= self.warmup {
                                match kind {
                                    OpKind::Prefetch => self.offchip.pmiss += 1,
                                    _ => self.offchip.dmiss += 1,
                                }
                            }
                            self.note_outstanding(ready_at);
                            ready_at
                        }
                        // Same-cycle allocation races are pre-gated in
                        // issue(); this is unreachable in practice but
                        // falls back safely.
                        MshrOutcome::Full => now + self.cfg.mem_latency,
                    }
                }
            }
        };
        if kind == OpKind::Prefetch {
            now + 1
        } else {
            data_at
        }
    }

    fn dispatch(&mut self) -> usize {
        let mut n = 0;
        while n < self.cfg.dispatch_width {
            if self.serialize_block.is_some() {
                break;
            }
            if self.rob.len() >= self.cfg.rob || self.unissued >= self.cfg.iw {
                break;
            }
            let Some(&(ref inst, mispredicted)) = self.fetch_queue.front() else {
                break;
            };
            let serializing = inst.is_serializing() && self.cfg.issue.serializing();
            if serializing && !self.rob.is_empty() {
                break; // pipeline drain
            }
            let inst = *inst;
            self.fetch_queue.pop_front();
            let seq = self.next_seq;
            self.next_seq += 1;
            let mut producers = [None; 3];
            for (k, src) in inst.dep_srcs().enumerate() {
                let w = self.last_writer[src.index()];
                if w > self.head_seq {
                    producers[k] = Some(w - 1);
                }
            }
            if let Some(dst) = inst.dep_dst() {
                self.last_writer[dst.index()] = seq + 1;
            }
            if inst.kind.writes_memory() {
                if let Some(m) = inst.mem {
                    self.store_fwd.insert(m.addr & !7, seq);
                    if self.store_fwd.len() > 1 << 16 {
                        let head = self.head_seq;
                        self.store_fwd.retain(|_, &mut s| s >= head);
                    }
                }
            }
            self.rob.push_back(Entry {
                kind: inst.kind,
                producers,
                mem_addr: inst.mem.map(|m| m.addr),
                mispredicted,
                issued: false,
                completed: false,
                complete_at: u64::MAX,
            });
            self.unissued += 1;
            if serializing {
                self.serialize_block = Some(seq);
            }
            n += 1;
        }
        n
    }

    fn fetch(&mut self) -> usize {
        if self.awaiting_redirect || self.now < self.fetch_stall_until {
            return 0;
        }
        let mut n = 0;
        while n < self.cfg.fetch_width && self.fetch_queue.len() < self.cfg.fetch_buffer {
            let inst = match self.pending_fetch.take() {
                Some(i) => i, // its I-line has arrived
                None => {
                    if self.trace_done || self.fetched >= self.limit {
                        break;
                    }
                    let Some(inst) = self.trace.next_inst() else {
                        self.trace_done = true;
                        break;
                    };
                    self.fetched += 1;
                    // Instruction-cache access per line.
                    let line = line_of(inst.pc);
                    if line != self.last_ifetch_line {
                        self.last_ifetch_line = line;
                        let arrives = match self.hierarchy.ifetch(inst.pc) {
                            Access::L1Hit => None,
                            Access::L2Hit => Some(self.now + self.cfg.l2_latency),
                            Access::L3Hit => {
                                let ready = self.now + self.cfg.l3_latency;
                                if self.fetched > self.warmup {
                                    self.offchip.imiss += 1;
                                }
                                self.note_outstanding(ready);
                                Some(ready)
                            }
                            Access::OffChip => {
                                if self.cfg.perfect_l2 {
                                    Some(self.now + self.cfg.l2_latency)
                                } else {
                                    let ready = match self.mshr.request(line, self.now) {
                                        MshrOutcome::Primary { ready_at }
                                        | MshrOutcome::Merged { ready_at } => ready_at,
                                        MshrOutcome::Full => self.now + self.cfg.mem_latency,
                                    };
                                    if self.fetched > self.warmup {
                                        self.offchip.imiss += 1;
                                    }
                                    self.note_outstanding(ready);
                                    Some(ready)
                                }
                            }
                        };
                        if let Some(t) = arrives {
                            // The instruction is not available until its
                            // line arrives; park it and stall fetch.
                            self.fetch_stall_until = t;
                            self.pending_fetch = Some(inst);
                            return n;
                        }
                    }
                    inst
                }
            };
            let mispredicted = if inst.is_branch() {
                self.branches.observe(&inst)
            } else {
                false
            };
            self.fetch_queue.push_back((inst, mispredicted));
            n += 1;
            if mispredicted {
                // The front end runs down the wrong path (absent from the
                // trace) until the branch resolves and redirects.
                self.awaiting_redirect = true;
                self.fetch_stall_until = u64::MAX;
                break;
            }
        }
        n
    }
}
