//! The cycle-level pipeline model.
//!
//! A single clock drives five stages — fetch, dispatch, issue, complete,
//! retire — over explicit ROB/issue-window/fetch-buffer structures. The
//! clock *skips* dead time: when a cycle performs no work, it jumps to the
//! next event (a completion, an MSHR fill, a fetch redirect), which makes
//! thousand-cycle off-chip stalls cheap to simulate while preserving
//! exact cycle accounting.
//!
//! The front end walks an [`InstSource`]'s columns by index: fetch and
//! dispatch read only the narrow fields they need (pc, class code,
//! dependence registers, effective address), and every per-instruction
//! class test is a bit-test against [`mlp_isa::CLASS_ATTRS`] instead of a
//! `match` over the row-level enum. Completion timestamps live in a
//! min-heap (only the earliest is ever inspected), and the MLP(t)
//! integrals run off incrementally-maintained outstanding totals.

use crate::{CycleReport, CycleSimConfig};
use mlp_hash::FxHashMap;
use mlp_isa::{
    line_of, ChunkedSoaSource, InstSource, SharedSoaSource, SoAChunks, StreamingSoaSource,
    TraceSoA, TraceSource, ATTR_BRANCH, ATTR_READS_MEM, ATTR_SERIALIZING, ATTR_WRITES_MEM,
    AVAIL_SLOTS, CLASS_ALU, CLASS_ATOMIC, CLASS_ATTRS, CLASS_LOAD, CLASS_MEMBAR, CLASS_NOP,
    CLASS_PREFETCH, CLASS_STORE,
};
use mlp_mem::{Access, Hierarchy, Mshr, MshrOutcome};
use mlp_obs::{IntervalSampler, LocalHist, Value};
use mlp_predict::{BranchObserver, BranchPredictor, BranchStats, PerfectBranchPredictor};
use mlpsim::{BranchMode, OffchipCounts};
use std::cell::Cell;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};

/// No producer in this operand slot ([`Entry::producers`] sentinel).
const NO_PRODUCER: u64 = u64::MAX;

#[derive(Clone, Debug)]
struct Entry {
    class: u8,
    mispredicted: bool,
    producers: [u64; 3], // sequence numbers; NO_PRODUCER = none
    mem_addr: Option<u64>,
    complete_at: u64,
}

#[inline]
fn attrs(class: u8) -> u8 {
    CLASS_ATTRS[class as usize]
}

enum Branches {
    Real(BranchPredictor),
    Perfect(PerfectBranchPredictor),
}

impl Branches {
    fn observe_branch(&mut self, pc: u64, info: mlp_isa::BranchInfo) -> bool {
        match self {
            Branches::Real(p) => p.observe_branch(pc, info),
            Branches::Perfect(p) => p.observe_branch(pc, info),
        }
    }

    fn stats(&self) -> BranchStats {
        match self {
            Branches::Real(p) => p.stats(),
            Branches::Perfect(p) => p.stats(),
        }
    }
}

/// Per-thread pool of the pipeline's per-run containers, handed (cleared,
/// capacity intact) from one run to the next so sweep points allocate no
/// steady-state scratch.
#[derive(Default)]
struct Scratch {
    fetch_queue: VecDeque<(u32, bool)>,
    rob: VecDeque<Entry>,
    store_fwd: FxHashMap<u64, u64>,
    completions: BinaryHeap<Reverse<(u64, u64)>>,
    decisions: Vec<u64>,
    planned: Vec<u64>,
    issued_bits: Vec<u64>,
    completed_bits: Vec<u64>,
    short_done: Vec<u64>,
}

impl Scratch {
    fn clear(&mut self) {
        self.fetch_queue.clear();
        self.rob.clear();
        self.store_fwd.clear();
        self.completions.clear();
        self.decisions.clear();
        self.planned.clear();
        self.issued_bits.clear();
        self.completed_bits.clear();
        self.short_done.clear();
    }
}

thread_local! {
    static POOL: Cell<Option<Scratch>> = const { Cell::new(None) };
}

fn take_scratch() -> Scratch {
    match POOL.take() {
        Some(mut s) => {
            s.clear();
            s
        }
        None => Scratch::default(),
    }
}

/// The cycle-accurate simulator.
///
/// # Examples
///
/// ```
/// use mlp_cyclesim::{CycleSim, CycleSimConfig};
/// use mlp_workloads::micro;
///
/// let trace = micro::pointer_chase(4, 1);
/// let report = CycleSim::new(CycleSimConfig::default())
///     .run(&mut mlp_isa::SliceTrace::new(&trace), 0, u64::MAX);
/// // Four serialized misses: at least 4 x 200 cycles.
/// assert!(report.cycles >= 800);
/// ```
#[derive(Debug)]
pub struct CycleSim {
    config: CycleSimConfig,
}

impl CycleSim {
    /// Creates a simulator for `config`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`CycleSimConfig::validate`].
    pub fn new(config: CycleSimConfig) -> CycleSim {
        config.validate();
        CycleSim { config }
    }

    /// The configuration being simulated.
    pub fn config(&self) -> &CycleSimConfig {
        &self.config
    }

    /// Runs the pipeline over `trace`: `warmup` retired instructions
    /// train the caches and predictors without counting, then up to
    /// `measure` instructions are measured (the run also ends at
    /// end-of-trace, after draining).
    ///
    /// The stream is decoded into a per-run column buffer and then runs
    /// through exactly the same kernel as [`CycleSim::run_shared`].
    pub fn run<T: TraceSource>(&mut self, trace: &mut T, warmup: u64, measure: u64) -> CycleReport {
        let mut src = StreamingSoaSource::new(trace);
        Machine::new(&self.config, &mut src, warmup, measure).run()
    }

    /// Runs the pipeline over a pre-materialized column trace (the first
    /// `len` instructions of `soa`), without copying or decoding anything
    /// per run.
    ///
    /// # Panics
    ///
    /// Panics if `len > soa.len()`.
    pub fn run_shared(
        &mut self,
        soa: &TraceSoA,
        len: usize,
        warmup: u64,
        measure: u64,
    ) -> CycleReport {
        let mut src = SharedSoaSource::new(soa, len);
        Machine::new(&self.config, &mut src, warmup, measure).run()
    }

    /// Runs the pipeline over a stream of column chunks, keeping only a
    /// bounded window of the trace resident: each cycle the machine
    /// releases everything older than the oldest instruction the front
    /// end still needs (the ROB caches its fields at dispatch).
    pub fn run_chunks<C: SoAChunks>(
        &mut self,
        chunks: C,
        warmup: u64,
        measure: u64,
    ) -> CycleReport {
        let mut src = ChunkedSoaSource::new(chunks);
        Machine::new(&self.config, &mut src, warmup, measure).run()
    }
}

struct Machine<'a, S> {
    cfg: &'a CycleSimConfig,
    src: &'a mut S,
    hierarchy: Hierarchy,
    mshr: Mshr,
    branches: Branches,
    now: u64,
    // front end
    fetch_queue: VecDeque<(u32, bool)>, // trace index, with mispredict flag
    pending_fetch: Option<u32>,         // waiting for its I-line to arrive
    fetch_stall_until: u64,
    awaiting_redirect: bool,
    last_ifetch_line: u64,
    fetch_pos: usize,
    fetched: u64,
    // back end
    rob: VecDeque<Entry>,
    head_seq: u64,
    next_seq: u64,
    unissued: usize,
    /// Oldest sequence number that may still be unissued. Every entry
    /// before it is issued (issued entries never revert), so the
    /// per-cycle issue scan starts here instead of at the ROB head —
    /// the skipped prefix is exactly the entries the scan would have
    /// `continue`d past before touching any policy-gate state.
    first_unissued: u64,
    last_writer: [u64; AVAIL_SLOTS], // seq + 1; 0 = none; sentinel slots inert
    store_fwd: FxHashMap<u64, u64>,  // addr8 -> latest store seq
    serialize_block: Option<u64>,
    completions: BinaryHeap<Reverse<(u64, u64)>>, // (complete_at, seq)
    // Single-cycle completions bypass the heap: everything issued during
    // one cycle with `complete_at == now + 1` lands here and is drained
    // wholesale at the next step (the clock strictly advances between
    // steps, so at most one generation is ever in flight).
    short_done: Vec<u64>,
    short_at: u64,
    // Issued/completed flags as ring bitsets indexed by `seq & ring_mask`
    // (ring capacity >= ROB capacity, so live sequence numbers never
    // collide). The issue scan and producer-readiness checks hit these
    // few cache-resident words instead of loading scattered ROB entries.
    issued_bits: Vec<u64>,
    completed_bits: Vec<u64>,
    ring_mask: u64,
    // Reused scratch for issue(), so the per-cycle scan does not allocate.
    decisions_scratch: Vec<u64>,
    planned_scratch: Vec<u64>,
    // MLP(t) integration (useful accesses) and fM (all transfers)
    outstanding: BTreeMap<u64, u32>,
    fm_outstanding: BTreeMap<u64, u32>,
    // Cached smallest key of each map (`u64::MAX` when empty), so the
    // per-cycle clock advance compares two integers instead of walking
    // two tree spines.
    out_min: u64,
    fm_min: u64,
    outstanding_size: u32,
    fm_size: u32,
    mlp_cursor: u64,
    // accounting
    retired: u64,
    warmup: u64,
    limit: u64,
    measuring: bool,
    measure_start_cycle: u64,
    offchip: OffchipCounts,
    mlp_weighted: u64,
    active_cycles: u64,
    fm_weighted: u64,
    fm_active: u64,
    branch_base: BranchStats,
}

impl<'a, S: InstSource> Machine<'a, S> {
    fn new(cfg: &'a CycleSimConfig, src: &'a mut S, warmup: u64, measure: u64) -> Self {
        let pool = take_scratch();
        let ring = cfg.rob.next_power_of_two().max(64);
        let mut issued_bits = pool.issued_bits;
        let mut completed_bits = pool.completed_bits;
        issued_bits.resize(ring / 64, 0);
        completed_bits.resize(ring / 64, 0);
        Machine {
            cfg,
            src,
            hierarchy: Hierarchy::new(cfg.hierarchy),
            mshr: Mshr::new(cfg.mshrs, cfg.mem_latency),
            branches: match cfg.branch {
                BranchMode::Real(c) => Branches::Real(BranchPredictor::new(c)),
                BranchMode::Perfect => Branches::Perfect(PerfectBranchPredictor::new()),
            },
            now: 0,
            fetch_queue: pool.fetch_queue,
            pending_fetch: None,
            fetch_stall_until: 0,
            awaiting_redirect: false,
            last_ifetch_line: u64::MAX,
            fetch_pos: 0,
            fetched: 0,
            rob: pool.rob,
            head_seq: 0,
            next_seq: 0,
            unissued: 0,
            first_unissued: 0,
            last_writer: [0; AVAIL_SLOTS],
            store_fwd: pool.store_fwd,
            serialize_block: None,
            completions: pool.completions,
            short_done: pool.short_done,
            short_at: 0,
            issued_bits,
            completed_bits,
            ring_mask: ring as u64 - 1,
            decisions_scratch: pool.decisions,
            planned_scratch: pool.planned,
            outstanding: BTreeMap::new(),
            fm_outstanding: BTreeMap::new(),
            out_min: u64::MAX,
            fm_min: u64::MAX,
            outstanding_size: 0,
            fm_size: 0,
            mlp_cursor: 0,
            retired: 0,
            warmup,
            limit: warmup.saturating_add(measure),
            measuring: warmup == 0,
            measure_start_cycle: 0,
            offchip: OffchipCounts::default(),
            mlp_weighted: 0,
            active_cycles: 0,
            fm_weighted: 0,
            fm_active: 0,
            branch_base: BranchStats::default(),
        }
    }

    fn run(mut self) -> CycleReport {
        let mut last_progress = (0u64, 0u64); // (cycle, retired)
        let mut stall_cycles = 0u64;
        let obs_armed = mlp_obs::counters_on();
        let mut stall_burst = LocalHist::new();
        let mut cur_burst = 0u64;
        let mut sampler = IntervalSampler::armed("cyclesim.sample");
        loop {
            let worked = self.step();
            if self.finished() {
                break;
            }
            if worked {
                if cur_burst > 0 {
                    stall_burst.record(cur_burst);
                    cur_burst = 0;
                }
                self.advance_to(self.now + 1);
            } else {
                let next = self.next_event().unwrap_or(self.now + 1).max(self.now + 1);
                if self.measuring {
                    stall_cycles += next - self.now;
                    if obs_armed {
                        cur_burst += next - self.now;
                    }
                }
                self.advance_to(next);
            }
            let pos = self.retired.saturating_sub(self.warmup);
            if sampler.as_ref().is_some_and(|s| s.due(pos)) {
                let fields = self.sample_fields();
                if let Some(s) = sampler.as_mut() {
                    s.record(pos, &fields);
                }
            }
            // Deadlock detector: modelling bugs must fail loudly.
            if self.retired != last_progress.1 {
                last_progress = (self.now, self.retired);
            } else {
                assert!(
                    self.now - last_progress.0 < 20 * self.cfg.mem_latency + 100_000,
                    "pipeline stuck at cycle {} (head {:?})",
                    self.now,
                    self.rob.front()
                );
            }
        }
        if cur_burst > 0 {
            stall_burst.record(cur_burst);
        }
        if sampler.is_some() {
            let pos = self.retired.saturating_sub(self.warmup);
            let fields = self.sample_fields();
            if let Some(s) = sampler.as_mut() {
                s.finish(pos, &fields);
            }
        }
        let b = self.branches.stats();
        let report = CycleReport {
            cycles: self.now.saturating_sub(self.measure_start_cycle),
            insts: self.retired.saturating_sub(self.warmup),
            offchip: self.offchip,
            mlp_weighted_cycles: self.mlp_weighted,
            active_cycles: self.active_cycles,
            fm_weighted_cycles: self.fm_weighted,
            fm_active_cycles: self.fm_active,
            branch_stats: BranchStats {
                branches: b.branches - self.branch_base.branches,
                mispredicts: b.mispredicts - self.branch_base.mispredicts,
            },
        };
        crate::obs::flush_run(
            &report,
            crate::obs::RunObs {
                stall_cycles,
                mshr_high_water: self.mshr.high_water() as u64,
                runahead_entries: 0,
                runahead_exits: 0,
                stall_burst,
                runahead_episode: LocalHist::new(),
            },
        );
        self.hierarchy.flush_obs();
        self.mshr.flush_obs();
        POOL.set(Some(Scratch {
            fetch_queue: self.fetch_queue,
            rob: self.rob,
            store_fwd: self.store_fwd,
            completions: self.completions,
            decisions: self.decisions_scratch,
            planned: self.planned_scratch,
            issued_bits: self.issued_bits,
            completed_bits: self.completed_bits,
            short_done: self.short_done,
        }));
        report
    }

    /// Cumulative fields for one interval sample.
    fn sample_fields(&self) -> [(&'static str, Value<'static>); 5] {
        [
            (
                "cycles",
                Value::U64(self.now.saturating_sub(self.measure_start_cycle)),
            ),
            ("offchip", Value::U64(self.offchip.total())),
            ("mshr", Value::U64(self.mshr.outstanding() as u64)),
            ("mlp_weighted", Value::U64(self.mlp_weighted)),
            ("active_cycles", Value::U64(self.active_cycles)),
        ]
    }

    fn finished(&mut self) -> bool {
        if self.retired >= self.limit {
            return true;
        }
        self.trace_done()
            && self.fetch_queue.is_empty()
            && self.pending_fetch.is_none()
            && self.rob.is_empty()
    }

    #[inline]
    fn trace_done(&mut self) -> bool {
        let want = self.fetch_pos + 1;
        self.src.available() < want && self.src.ensure(want) < want
    }

    /// Column slot of absolute trace index `idx` (streaming sources
    /// offset their columns by `base()`).
    #[inline]
    fn rel(&self, idx: usize) -> usize {
        idx - self.src.base()
    }

    /// Executes one cycle; returns whether any stage made progress.
    fn step(&mut self) -> bool {
        // Everything older than the oldest instruction still awaiting
        // dispatch is never re-read (the ROB caches its fields), so a
        // streaming source may evict it.
        let low_water = self
            .fetch_queue
            .front()
            .map(|&(i, _)| i as usize)
            .or_else(|| self.pending_fetch.map(|i| i as usize))
            .unwrap_or(self.fetch_pos);
        self.src.release(low_water);
        self.mshr.expire(self.now);
        self.drain_completions();
        let retired = self.retire();
        let issued = self.issue();
        let dispatched = self.dispatch();
        let fetched = self.fetch();
        retired + issued + dispatched + fetched > 0
    }

    // ----- clock & MLP(t) integration ------------------------------------

    fn advance_to(&mut self, to: u64) {
        debug_assert!(to > self.now);
        let mut t = self.mlp_cursor.max(self.now);
        while t < to {
            // Transfers are always enqueued with a future ready time and
            // popped as the cursor passes them, so every entry still in
            // the maps is live for this segment and the running totals
            // are exactly the per-segment sums.
            let size = self.outstanding_size;
            let fm_size = self.fm_size;
            let nb = self.out_min.min(self.fm_min);
            let next_boundary = if nb < to { nb } else { to };
            let seg_end = next_boundary.max(t + 1);
            let len = seg_end - t;
            if self.measuring {
                if size > 0 {
                    self.active_cycles += len;
                    self.mlp_weighted += size as u64 * len;
                }
                if fm_size > 0 {
                    self.fm_active += len;
                    self.fm_weighted += fm_size as u64 * len;
                }
            }
            t = seg_end;
            // Pop transfers completing at the boundary we just reached.
            if self.out_min <= t {
                while let Some((&k, &n)) = self.outstanding.iter().next() {
                    if k <= t {
                        self.outstanding.remove(&k);
                        self.outstanding_size -= n;
                    } else {
                        break;
                    }
                }
                self.out_min = self.outstanding.keys().next().copied().unwrap_or(u64::MAX);
            }
            if self.fm_min <= t {
                while let Some((&k, &n)) = self.fm_outstanding.iter().next() {
                    if k <= t {
                        self.fm_outstanding.remove(&k);
                        self.fm_size -= n;
                    } else {
                        break;
                    }
                }
                self.fm_min = self
                    .fm_outstanding
                    .keys()
                    .next()
                    .copied()
                    .unwrap_or(u64::MAX);
            }
        }
        self.mlp_cursor = t;
        self.now = to;
    }

    fn next_event(&self) -> Option<u64> {
        let mut next = None;
        let mut consider = |t: u64| {
            if t > self.now {
                next = Some(next.map_or(t, |n: u64| n.min(t)));
            }
        };
        if !self.short_done.is_empty() {
            consider(self.short_at);
        }
        if let Some(&Reverse((t, _))) = self.completions.peek() {
            consider(t);
        }
        if self.out_min != u64::MAX {
            consider(self.out_min);
        }
        if self.fetch_stall_until > self.now && self.fetch_stall_until != u64::MAX {
            consider(self.fetch_stall_until);
        }
        next
    }

    fn note_outstanding(&mut self, ready_at: u64) {
        *self.outstanding.entry(ready_at).or_insert(0) += 1;
        self.outstanding_size += 1;
        self.out_min = self.out_min.min(ready_at);
        self.note_fm(ready_at);
    }

    /// Tracks a transfer for the fM (all-outstanding) integral only.
    fn note_fm(&mut self, ready_at: u64) {
        *self.fm_outstanding.entry(ready_at).or_insert(0) += 1;
        self.fm_size += 1;
        self.fm_min = self.fm_min.min(ready_at);
    }

    // ----- stages ---------------------------------------------------------

    fn drain_completions(&mut self) {
        if !self.short_done.is_empty() && self.now >= self.short_at {
            let head = self.head_seq;
            let mut short = std::mem::take(&mut self.short_done);
            for &seq in &short {
                if seq >= head {
                    self.set_completed_bit(seq);
                }
            }
            short.clear();
            self.short_done = short;
        }
        while let Some(&Reverse((t, seq))) = self.completions.peek() {
            if t > self.now {
                break;
            }
            self.completions.pop();
            if seq >= self.head_seq {
                self.set_completed_bit(seq);
            }
        }
    }

    fn retire(&mut self) -> usize {
        let mut n = 0;
        while n < self.cfg.retire_width {
            if self.rob.is_empty() || !self.completed_bit(self.head_seq) {
                break;
            }
            let e = self.rob.pop_front().expect("front checked");
            self.head_seq += 1;
            if attrs(e.class) & ATTR_WRITES_MEM != 0 {
                if let Some(addr) = e.mem_addr {
                    // Write-allocate. An off-chip fill is hidden by the
                    // store buffer (not a useful access) but still an
                    // outstanding transfer for the fM metric.
                    if self.hierarchy.store(addr).is_off_chip() && !self.cfg.perfect_l2 {
                        let ready = self.now + self.cfg.mem_latency;
                        self.note_fm(ready);
                    }
                }
            }
            if self.serialize_block == Some(self.head_seq - 1) {
                self.serialize_block = None;
            }
            self.retired += 1;
            n += 1;
            if self.retired == self.warmup && !self.measuring {
                self.start_measuring();
            }
            if self.retired >= self.limit {
                break;
            }
        }
        n
    }

    fn start_measuring(&mut self) {
        self.measuring = true;
        self.measure_start_cycle = self.now;
        self.hierarchy.reset_stats();
        self.branch_base = self.branches.stats();
    }

    #[inline]
    fn issued_bit(&self, seq: u64) -> bool {
        let slot = seq & self.ring_mask;
        self.issued_bits[(slot >> 6) as usize] & (1 << (slot & 63)) != 0
    }

    #[inline]
    fn completed_bit(&self, seq: u64) -> bool {
        let slot = seq & self.ring_mask;
        self.completed_bits[(slot >> 6) as usize] & (1 << (slot & 63)) != 0
    }

    #[inline]
    fn set_completed_bit(&mut self, seq: u64) {
        let slot = seq & self.ring_mask;
        self.completed_bits[(slot >> 6) as usize] |= 1 << (slot & 63);
    }

    /// Resets both flag bits for a sequence number's ring slot (called
    /// when dispatch recycles the slot for a new entry).
    #[inline]
    fn clear_flag_bits(&mut self, seq: u64) {
        let slot = seq & self.ring_mask;
        let (w, b) = ((slot >> 6) as usize, 1u64 << (slot & 63));
        self.issued_bits[w] &= !b;
        self.completed_bits[w] &= !b;
    }

    #[inline]
    fn producer_ready(&self, seq: u64) -> bool {
        seq < self.head_seq || self.completed_bit(seq)
    }

    #[inline]
    fn entry_ready(&self, e: &Entry) -> bool {
        e.producers
            .iter()
            .all(|&p| p == NO_PRODUCER || self.producer_ready(p))
    }

    fn issue(&mut self) -> usize {
        let mut issued_now = 0;
        let mut mem_in_order_ok = true; // config A: memops must go oldest-first
        let mut branch_in_order_ok = true; // configs A-C
        let mut unissued_store_blocks_loads = false; // config B
        let head = self.head_seq;
        let loads_in_order = self.cfg.issue.loads_in_order();
        let wait_staddr = self.cfg.issue.loads_wait_store_addresses();

        // Collect issue decisions first (borrow discipline), apply after.
        let mut decisions = std::mem::take(&mut self.decisions_scratch);
        let mut planned_lines = std::mem::take(&mut self.planned_scratch);
        decisions.clear();
        planned_lines.clear();
        let mut fu = self.first_unissued.max(head);
        while fu < self.next_seq && self.issued_bit(fu) {
            fu += 1;
        }
        self.first_unissued = fu;
        for seq in fu..self.next_seq {
            if decisions.len() >= self.cfg.issue_width {
                break;
            }
            if self.issued_bit(seq) {
                continue;
            }
            let e = &self.rob[(seq - head) as usize];
            let a = attrs(e.class);
            // Prefetches are hints and do not participate in config A's
            // in-order memory schedule (matching the epoch model).
            let is_mem = a & (ATTR_READS_MEM | ATTR_WRITES_MEM) != 0;
            let is_branch = a & ATTR_BRANCH != 0;
            let ready = self.entry_ready(e);

            // Policy gates.
            let mut can = ready;
            if loads_in_order && is_mem && !mem_in_order_ok {
                can = false;
            }
            if is_branch && !branch_in_order_ok {
                can = false;
            }
            if wait_staddr && a & ATTR_READS_MEM != 0 && unissued_store_blocks_loads {
                can = false;
            }
            // True memory dependence: a load whose address matches an
            // older un-issued store must wait for the store.
            if can && a & ATTR_READS_MEM != 0 {
                if let Some(addr) = e.mem_addr {
                    if let Some(&sseq) = self.store_fwd.get(&(addr & !7)) {
                        if sseq >= head && sseq < seq && !self.issued_bit(sseq) {
                            can = false;
                        }
                    }
                }
            }
            // MSHR pressure: a load that needs a new off-chip transfer
            // cannot issue when the MSHR file is full (including transfers
            // other loads in this same cycle are about to start).
            if can && a & ATTR_READS_MEM != 0 && !self.cfg.perfect_l2 {
                if let Some(addr) = e.mem_addr {
                    let line = line_of(addr);
                    let needs_new = !self.mshr.is_pending(line)
                        && !self.hierarchy.probe_l2(addr)
                        && !planned_lines.contains(&line);
                    if needs_new {
                        if self.mshr.outstanding() + planned_lines.len() >= self.cfg.mshrs {
                            can = false;
                        } else {
                            planned_lines.push(line);
                        }
                    }
                }
            }

            if can {
                decisions.push(seq);
            }
            // Update in-order scan state for younger instructions.
            if is_mem && loads_in_order && !can {
                mem_in_order_ok = false;
            }
            if is_branch && !can {
                branch_in_order_ok = false;
            }
            if a & ATTR_WRITES_MEM != 0 && !can {
                unissued_store_blocks_loads = true;
            }
        }
        for &seq in &decisions {
            self.do_issue(seq);
            issued_now += 1;
        }
        self.decisions_scratch = decisions;
        self.planned_scratch = planned_lines;
        issued_now
    }

    fn do_issue(&mut self, seq: u64) {
        let idx = (seq - self.head_seq) as usize;
        let now = self.now;
        let (class, mem_addr, mispredicted) = {
            let e = &self.rob[idx];
            (e.class, e.mem_addr, e.mispredicted)
        };
        let complete_at = match class {
            CLASS_ALU | CLASS_NOP | CLASS_MEMBAR | CLASS_STORE => now + 1,
            CLASS_LOAD | CLASS_ATOMIC | CLASS_PREFETCH => {
                let addr = mem_addr.expect("memory op carries an address");
                self.memory_complete_time(class, addr, seq)
            }
            _ => {
                // The four branch classes.
                let t = now + 1;
                if mispredicted {
                    // Redirect the stalled front end once resolved.
                    self.fetch_stall_until = t + self.cfg.mispredict_penalty;
                    self.awaiting_redirect = false;
                }
                t
            }
        };
        let e = &mut self.rob[idx];
        e.complete_at = complete_at;
        let slot = seq & self.ring_mask;
        self.issued_bits[(slot >> 6) as usize] |= 1 << (slot & 63);
        self.unissued -= 1;
        if complete_at == now + 1 {
            // The common case: next-cycle completion skips the heap.
            self.short_at = complete_at;
            self.short_done.push(seq);
        } else {
            self.completions.push(Reverse((complete_at, seq)));
        }
    }

    /// Timing (and MLP accounting) of a memory read issued at `now`.
    fn memory_complete_time(&mut self, class: u8, addr: u64, seq: u64) -> u64 {
        let now = self.now;
        let is_prefetch = class == CLASS_PREFETCH;
        // Store-to-load forwarding from an older in-flight store.
        if !is_prefetch {
            if let Some(&sseq) = self.store_fwd.get(&(addr & !7)) {
                if sseq >= self.head_seq && sseq < seq {
                    let sidx = (sseq - self.head_seq) as usize;
                    debug_assert!(self.issued_bit(sseq), "gated at issue");
                    return self.rob[sidx].complete_at.max(now) + 1;
                }
            }
        }
        let line = line_of(addr);
        if !self.cfg.perfect_l2 && self.mshr.is_pending(line) {
            let ready = self.mshr.ready_at(line).expect("pending");
            return if is_prefetch { now + 1 } else { ready };
        }
        let access = self.hierarchy.load(addr);
        let data_at = match access {
            Access::L1Hit => now + self.cfg.l1_latency,
            Access::L2Hit => now + self.cfg.l2_latency,
            Access::L3Hit => {
                // An off-chip L3 hit is a (shorter) off-chip access: it
                // counts toward MLP and is outstanding for its latency.
                let ready = now + self.cfg.l3_latency;
                if seq >= self.warmup {
                    if is_prefetch {
                        self.offchip.pmiss += 1;
                    } else {
                        self.offchip.dmiss += 1;
                    }
                }
                self.note_outstanding(ready);
                ready
            }
            Access::OffChip => {
                if self.cfg.perfect_l2 {
                    now + self.cfg.l2_latency
                } else {
                    match self.mshr.request(line, now) {
                        MshrOutcome::Primary { ready_at } | MshrOutcome::Merged { ready_at } => {
                            if seq >= self.warmup {
                                if is_prefetch {
                                    self.offchip.pmiss += 1;
                                } else {
                                    self.offchip.dmiss += 1;
                                }
                            }
                            self.note_outstanding(ready_at);
                            ready_at
                        }
                        // Same-cycle allocation races are pre-gated in
                        // issue(); this is unreachable in practice but
                        // falls back safely.
                        MshrOutcome::Full => now + self.cfg.mem_latency,
                    }
                }
            }
        };
        if is_prefetch {
            now + 1
        } else {
            data_at
        }
    }

    fn dispatch(&mut self) -> usize {
        let mut n = 0;
        while n < self.cfg.dispatch_width {
            if self.serialize_block.is_some() {
                break;
            }
            if self.rob.len() >= self.cfg.rob || self.unissued >= self.cfg.iw {
                break;
            }
            let Some(&(idx, mispredicted)) = self.fetch_queue.front() else {
                break;
            };
            let slot = self.rel(idx as usize);
            let class = self.src.soa().class()[slot];
            let a = attrs(class);
            let serializing = a & ATTR_SERIALIZING != 0 && self.cfg.issue.serializing();
            if serializing && !self.rob.is_empty() {
                break; // pipeline drain
            }
            self.fetch_queue.pop_front();
            let seq = self.next_seq;
            self.next_seq += 1;
            // Three unconditional reads: sentinel slots never hold a
            // writer (their `last_writer` entries stay 0 = none).
            let [d0, d1, d2] = self.src.soa().dep_srcs()[slot];
            let mut producers = [NO_PRODUCER; 3];
            for (k, d) in [d0, d1, d2].into_iter().enumerate() {
                let w = self.last_writer[d as usize];
                if w > self.head_seq {
                    producers[k] = w - 1;
                }
            }
            self.last_writer[self.src.soa().dep_dst()[slot] as usize] = seq + 1;
            let mem_addr = self
                .src
                .soa()
                .has_mem(slot)
                .then(|| self.src.soa().addr()[slot]);
            if a & ATTR_WRITES_MEM != 0 {
                if let Some(addr) = mem_addr {
                    self.store_fwd.insert(addr & !7, seq);
                    if self.store_fwd.len() > 1 << 16 {
                        let head = self.head_seq;
                        self.store_fwd.retain(|_, &mut s| s >= head);
                    }
                }
            }
            self.clear_flag_bits(seq);
            self.rob.push_back(Entry {
                class,
                mispredicted,
                producers,
                mem_addr,
                complete_at: u64::MAX,
            });
            self.unissued += 1;
            if serializing {
                self.serialize_block = Some(seq);
            }
            n += 1;
        }
        n
    }

    fn fetch(&mut self) -> usize {
        if self.awaiting_redirect || self.now < self.fetch_stall_until {
            return 0;
        }
        let mut n = 0;
        while n < self.cfg.fetch_width && self.fetch_queue.len() < self.cfg.fetch_buffer {
            let idx = match self.pending_fetch.take() {
                Some(i) => i, // its I-line has arrived
                None => {
                    if self.fetched >= self.limit || self.trace_done() {
                        break;
                    }
                    let idx = self.fetch_pos as u32;
                    self.fetch_pos += 1;
                    self.fetched += 1;
                    // Instruction-cache access per line.
                    let pc = self.src.soa().pc()[self.rel(idx as usize)];
                    let line = line_of(pc);
                    if line != self.last_ifetch_line {
                        self.last_ifetch_line = line;
                        let arrives = match self.hierarchy.ifetch(pc) {
                            Access::L1Hit => None,
                            Access::L2Hit => Some(self.now + self.cfg.l2_latency),
                            Access::L3Hit => {
                                let ready = self.now + self.cfg.l3_latency;
                                if self.fetched > self.warmup {
                                    self.offchip.imiss += 1;
                                }
                                self.note_outstanding(ready);
                                Some(ready)
                            }
                            Access::OffChip => {
                                if self.cfg.perfect_l2 {
                                    Some(self.now + self.cfg.l2_latency)
                                } else {
                                    let ready = match self.mshr.request(line, self.now) {
                                        MshrOutcome::Primary { ready_at }
                                        | MshrOutcome::Merged { ready_at } => ready_at,
                                        MshrOutcome::Full => self.now + self.cfg.mem_latency,
                                    };
                                    if self.fetched > self.warmup {
                                        self.offchip.imiss += 1;
                                    }
                                    self.note_outstanding(ready);
                                    Some(ready)
                                }
                            }
                        };
                        if let Some(t) = arrives {
                            // The instruction is not available until its
                            // line arrives; park it and stall fetch.
                            self.fetch_stall_until = t;
                            self.pending_fetch = Some(idx);
                            return n;
                        }
                    }
                    idx
                }
            };
            let slot = self.rel(idx as usize);
            let mispredicted = if attrs(self.src.soa().class()[slot]) & ATTR_BRANCH != 0 {
                let info = self
                    .src
                    .soa()
                    .branch_info(slot)
                    .expect("branch classes carry branch info");
                self.branches
                    .observe_branch(self.src.soa().pc()[slot], info)
            } else {
                false
            };
            self.fetch_queue.push_back((idx, mispredicted));
            n += 1;
            if mispredicted {
                // The front end runs down the wrong path (absent from the
                // trace) until the branch resolves and redirects.
                self.awaiting_redirect = true;
                self.fetch_stall_until = u64::MAX;
                break;
            }
        }
        n
    }
}
