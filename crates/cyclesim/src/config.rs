use mlp_mem::HierarchyConfig;
use mlpsim::{BranchMode, IssueConfig};

/// Configuration of the cycle-accurate pipeline.
///
/// The default matches the paper's §5.1 processor: 4-wide, 32-entry fetch
/// buffer, 64-entry issue window and ROB, the default cache hierarchy,
/// issue configuration C, and a 200-cycle off-chip latency.
///
/// # Examples
///
/// ```
/// use mlp_cyclesim::CycleSimConfig;
///
/// let cfg = CycleSimConfig {
///     mem_latency: 1000,
///     ..CycleSimConfig::default()
/// };
/// assert_eq!(cfg.rob, 64);
/// ```
#[derive(Clone, Debug)]
pub struct CycleSimConfig {
    /// Issue-constraint configuration. The cycle model supports A, B and
    /// C (in-order branch issue), mirroring the paper's validation scope.
    pub issue: IssueConfig,
    /// Instructions fetched per cycle.
    pub fetch_width: usize,
    /// Instructions dispatched (renamed) per cycle.
    pub dispatch_width: usize,
    /// Instructions issued per cycle.
    pub issue_width: usize,
    /// Instructions retired per cycle.
    pub retire_width: usize,
    /// Fetch-buffer entries between fetch and dispatch.
    pub fetch_buffer: usize,
    /// Issue-window (scheduler) entries.
    pub iw: usize,
    /// Reorder-buffer entries.
    pub rob: usize,
    /// Miss-status holding registers (outstanding off-chip transfers).
    pub mshrs: usize,
    /// L1 hit latency in cycles.
    pub l1_latency: u64,
    /// L2 hit latency in cycles.
    pub l2_latency: u64,
    /// Off-chip L3 hit latency in cycles (only used when the hierarchy
    /// has an L3 — the §2.1 future configuration).
    pub l3_latency: u64,
    /// Off-chip access latency in cycles (the paper sweeps 200/500/1000).
    pub mem_latency: u64,
    /// Front-end refill penalty after a resolved misprediction.
    pub mispredict_penalty: u64,
    /// Cache hierarchy geometry.
    pub hierarchy: HierarchyConfig,
    /// Branch-prediction mode.
    pub branch: BranchMode,
    /// Perfect-L2 mode: off-chip accesses behave like L2 hits. Used to
    /// measure `CPI_perf` for the performance model.
    pub perfect_l2: bool,
}

impl Default for CycleSimConfig {
    fn default() -> CycleSimConfig {
        CycleSimConfig {
            issue: IssueConfig::C,
            fetch_width: 4,
            dispatch_width: 4,
            issue_width: 4,
            retire_width: 4,
            fetch_buffer: 32,
            iw: 64,
            rob: 64,
            mshrs: 32,
            l1_latency: 2,
            l2_latency: 12,
            l3_latency: 80,
            mem_latency: 200,
            mispredict_penalty: 8,
            hierarchy: HierarchyConfig::default(),
            branch: BranchMode::default(),
            perfect_l2: false,
        }
    }
}

impl CycleSimConfig {
    /// Returns this configuration with a coupled issue-window/ROB size
    /// (the paper's validation sets them equal).
    #[must_use]
    pub fn with_window(mut self, size: usize) -> CycleSimConfig {
        self.iw = size;
        self.rob = size;
        self
    }

    /// Returns this configuration with the given off-chip latency.
    #[must_use]
    pub fn with_mem_latency(mut self, latency: u64) -> CycleSimConfig {
        self.mem_latency = latency;
        self
    }

    /// Returns this configuration with the given issue constraints.
    #[must_use]
    pub fn with_issue(mut self, issue: IssueConfig) -> CycleSimConfig {
        self.issue = issue;
        self
    }

    /// Returns this configuration in perfect-L2 (`CPI_perf`) mode.
    #[must_use]
    pub fn perfect_l2(mut self) -> CycleSimConfig {
        self.perfect_l2 = true;
        self
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on zero-sized structures, a ROB smaller than the issue
    /// window, or out-of-order branch issue (configurations D/E), which
    /// this cycle model does not implement.
    pub fn validate(&self) {
        assert!(self.iw > 0 && self.rob >= self.iw, "need 0 < iw <= rob");
        assert!(self.fetch_width > 0 && self.retire_width > 0);
        assert!(self.mshrs > 0, "need at least one MSHR");
        assert!(
            self.issue.branches_in_order(),
            "the cycle-accurate model only supports in-order branch issue \
             (configurations A-C), like the paper's reference simulator"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = CycleSimConfig::default();
        assert_eq!(c.iw, 64);
        assert_eq!(c.rob, 64);
        assert_eq!(c.fetch_buffer, 32);
        assert_eq!(c.issue, IssueConfig::C);
        assert_eq!(c.mem_latency, 200);
        assert!(!c.perfect_l2);
    }

    #[test]
    fn builders_compose() {
        let c = CycleSimConfig::default()
            .with_window(128)
            .with_mem_latency(1000)
            .with_issue(IssueConfig::A)
            .perfect_l2();
        assert_eq!((c.iw, c.rob), (128, 128));
        assert_eq!(c.mem_latency, 1000);
        assert_eq!(c.issue, IssueConfig::A);
        assert!(c.perfect_l2);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "in-order branch issue")]
    fn config_d_rejected() {
        CycleSimConfig::default()
            .with_issue(IssueConfig::D)
            .validate();
    }
}
