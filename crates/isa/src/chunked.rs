//! Chunked, compressed binary trace format (v2).
//!
//! The flat [`tracefile`](crate::tracefile) format (v1) stores 40 bytes
//! per instruction and must be decoded whole; fine for determinism
//! fixtures, useless for the paper's 50M-warmup + 100M-measure windows.
//! Version 2 frames the trace into fixed-capacity chunks of
//! column-oriented, delta+varint-compressed records so a reader can
//! stream one [`TraceSoA`] chunk at a time in bounded memory, verify
//! each chunk independently (per-chunk FNV-1a checksum), and seek
//! straight to any chunk through the footer index.
//!
//! Layout (little-endian throughout):
//!
//! ```text
//! header:  magic "MLP2" | version u16 (=2) | reserved u16 | chunk_cap u32
//! frame:   magic "CHNK" | n_insts u32 | payload_len u32 | fnv1a64 u64 |
//!          payload (columns, in order: pc Δvarint | class u8 | flags u8 |
//!          srcs [u8;3] | dst u8 | addr Δvarint | asize u8 |
//!          btarget Δvarint | value Δvarint)
//! footer:  magic "FIDX" | n_chunks u32 | total_insts u64 |
//!          per chunk: offset u64 | n_insts u32
//! trailer: footer_offset u64 | magic "2PLM"
//! ```
//!
//! `Δvarint` columns store per-column successive differences,
//! zigzag-mapped and LEB128-encoded: program counters, effective
//! addresses and branch targets are locally dense, so deltas are short.
//! Derived columns (dependence slots, the candidate index) are *not*
//! stored; the decoder re-derives them through [`TraceSoA::push`],
//! which also re-validates every record. The trailer makes the file
//! appendable: seek to `footer_offset`, continue writing frames, then
//! rewrite footer + trailer ([`ChunkedWriter::resume`]).
//!
//! # Examples
//!
//! ```
//! use mlp_isa::chunked::{ChunkedTrace, ChunkedWriter};
//! use mlp_isa::{Inst, Reg};
//!
//! let mut buf = Vec::new();
//! let mut w = ChunkedWriter::new(&mut buf, 2)?;
//! for i in 0..5u64 {
//!     w.push(&Inst::load(0x100 + 4 * i, Reg::int(1), 0, Reg::int(2), 0x8000))?;
//! }
//! let index = w.finish()?;
//! assert_eq!(index.total_insts, 5);
//! assert_eq!(index.chunks.len(), 3); // 2 + 2 + 1
//!
//! let mut r = ChunkedTrace::new(buf.as_slice())?;
//! let first = r.next_chunk()?.expect("one chunk");
//! assert_eq!(first.len(), 2);
//! # Ok::<(), mlp_isa::tracefile::TraceFileError>(())
//! ```

use crate::soa::{bkind_of, FLAG_BKIND_SHIFT, FLAG_HAS_BRANCH, FLAG_HAS_MEM, FLAG_TAKEN};
use crate::tracefile::TraceFileError;
use crate::{BranchInfo, Inst, MemAccess, Reg, TraceSoA, CLASS_COUNT};
use std::io::{self, Read, Seek, SeekFrom, Write};

const MAGIC: [u8; 4] = *b"MLP2";
const CHUNK_MAGIC: [u8; 4] = *b"CHNK";
const FOOTER_MAGIC: [u8; 4] = *b"FIDX";
const END_MAGIC: [u8; 4] = *b"2PLM";
const VERSION: u16 = 2;

/// Header size in bytes (magic + version + reserved + chunk_cap).
pub const HEADER_BYTES: u64 = 12;
const FRAME_HEADER_BYTES: u64 = 20;
const TRAILER_BYTES: u64 = 12;

/// Default chunk capacity in instructions (~2.8 MiB of decoded columns).
pub const DEFAULT_CHUNK_INSTS: u32 = 1 << 16;

/// Largest accepted chunk capacity. Bounds every size derived from a
/// hostile header: decode buffers stay proportional to bytes actually
/// present, never to a fabricated claim.
pub const MAX_CHUNK_INSTS: u32 = 1 << 22;

/// Ceiling on encoded bytes per record: four worst-case 10-byte varints
/// plus seven raw bytes.
const MAX_RECORD_ENC: u64 = 47;
/// Floor on encoded bytes per record: four 1-byte varints plus seven raw
/// bytes.
const MIN_RECORD_ENC: u64 = 11;

/// Largest footer entry count we pre-reserve for (same rationale as the
/// v1 record-count cap).
const MAX_PREALLOC_CHUNKS: u32 = 1 << 16;

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn zigzag(d: i64) -> u64 {
    ((d << 1) ^ (d >> 63)) as u64
}

fn unzigzag(z: u64) -> i64 {
    ((z >> 1) as i64) ^ -((z & 1) as i64)
}

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn put_delta(out: &mut Vec<u8>, vals: &[u64]) {
    let mut prev = 0u64;
    for &v in vals {
        put_varint(out, zigzag(v.wrapping_sub(prev) as i64));
        prev = v;
    }
}

/// Location and size of one chunk frame inside a v2 stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkEntry {
    /// Byte offset of the frame (its `CHNK` magic) from stream start.
    pub offset: u64,
    /// Instructions in the chunk (`1..=chunk_cap`).
    pub n_insts: u32,
}

/// The footer index of a v2 trace: everything needed to size, seek into
/// or append to the file without decoding it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChunkIndex {
    /// Chunk capacity declared in the header.
    pub chunk_cap: u32,
    /// Total instructions across all chunks.
    pub total_insts: u64,
    /// Per-chunk offsets and counts, in file order.
    pub chunks: Vec<ChunkEntry>,
}

impl ChunkIndex {
    /// The chunk holding absolute instruction `inst`, as
    /// `(chunk ordinal, index of the chunk's first instruction)`; `None`
    /// past the end of the trace.
    pub fn locate(&self, inst: u64) -> Option<(usize, u64)> {
        let mut start = 0u64;
        for (k, c) in self.chunks.iter().enumerate() {
            let next = start + c.n_insts as u64;
            if inst < next {
                return Some((k, start));
            }
            start = next;
        }
        None
    }
}

/// Deterministic single-bit fault injector for the streaming read path
/// (the `trace-bitflip` site, shared with the v1 reader): flips one bit
/// at the armed offset as bytes stream past.
struct Flipper {
    pos: u64,
    bit: Option<u64>,
}

impl Flipper {
    fn new() -> Flipper {
        Flipper {
            pos: 0,
            bit: mlp_faults::param(mlp_faults::TRACE_BITFLIP),
        }
    }

    fn apply(&mut self, buf: &mut [u8]) {
        if let Some(bit) = self.bit {
            let byte = bit / 8;
            if byte >= self.pos && byte < self.pos + buf.len() as u64 {
                buf[(byte - self.pos) as usize] ^= 1 << (bit % 8);
            }
        }
        self.pos += buf.len() as u64;
    }
}

/// Streaming writer of v2 chunked traces.
///
/// Buffers pushed instructions into a pending chunk, flushing a frame
/// whenever the chunk capacity fills; [`ChunkedWriter::finish`] flushes
/// the partial tail chunk and writes footer + trailer. Memory held is
/// one chunk, independent of trace length.
pub struct ChunkedWriter<W: Write> {
    w: W,
    chunk_cap: u32,
    pending: TraceSoA,
    entries: Vec<ChunkEntry>,
    offset: u64,
    total: u64,
}

impl<W: Write> ChunkedWriter<W> {
    /// Starts a new v2 stream on `w` with the given chunk capacity.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_cap` is 0 or exceeds [`MAX_CHUNK_INSTS`].
    ///
    /// # Errors
    ///
    /// Returns [`TraceFileError::Io`] on write failure.
    pub fn new(mut w: W, chunk_cap: u32) -> Result<ChunkedWriter<W>, TraceFileError> {
        assert!(
            (1..=MAX_CHUNK_INSTS).contains(&chunk_cap),
            "chunk capacity {chunk_cap} outside 1..={MAX_CHUNK_INSTS}"
        );
        w.write_all(&MAGIC)?;
        w.write_all(&VERSION.to_le_bytes())?;
        w.write_all(&0u16.to_le_bytes())?;
        w.write_all(&chunk_cap.to_le_bytes())?;
        Ok(ChunkedWriter {
            w,
            chunk_cap,
            pending: TraceSoA::new(),
            entries: Vec::new(),
            offset: HEADER_BYTES,
            total: 0,
        })
    }

    /// Appends one instruction, flushing a frame when the pending chunk
    /// fills.
    ///
    /// # Errors
    ///
    /// Returns [`TraceFileError::Io`] on write failure.
    pub fn push(&mut self, inst: &Inst) -> Result<(), TraceFileError> {
        self.pending.push(inst);
        if self.pending.len() == self.chunk_cap as usize {
            self.flush_chunk()?;
        }
        Ok(())
    }

    /// Appends every instruction of `insts`.
    ///
    /// # Errors
    ///
    /// Returns [`TraceFileError::Io`] on write failure.
    pub fn extend<I: IntoIterator<Item = Inst>>(&mut self, insts: I) -> Result<(), TraceFileError> {
        for i in insts {
            self.push(&i)?;
        }
        Ok(())
    }

    /// Instructions written so far (including the pending chunk).
    pub fn total_insts(&self) -> u64 {
        self.total + self.pending.len() as u64
    }

    fn flush_chunk(&mut self) -> Result<(), TraceFileError> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let soa = &self.pending;
        let mut payload = Vec::with_capacity(soa.len() * 16);
        put_delta(&mut payload, soa.pc());
        payload.extend_from_slice(soa.class());
        payload.extend_from_slice(soa.flags_raw());
        for s in soa.srcs_raw() {
            payload.extend_from_slice(s);
        }
        payload.extend_from_slice(soa.dst_raw());
        put_delta(&mut payload, soa.addr());
        payload.extend_from_slice(soa.asize());
        put_delta(&mut payload, soa.btarget());
        put_delta(&mut payload, soa.value());

        let n = soa.len() as u32;
        self.w.write_all(&CHUNK_MAGIC)?;
        self.w.write_all(&n.to_le_bytes())?;
        self.w.write_all(&(payload.len() as u32).to_le_bytes())?;
        self.w.write_all(&fnv1a64(&payload).to_le_bytes())?;
        self.w.write_all(&payload)?;
        self.entries.push(ChunkEntry {
            offset: self.offset,
            n_insts: n,
        });
        self.offset += FRAME_HEADER_BYTES + payload.len() as u64;
        self.total += n as u64;
        self.pending = TraceSoA::new();
        Ok(())
    }

    /// Flushes the tail chunk, writes footer + trailer and returns the
    /// footer index.
    ///
    /// # Errors
    ///
    /// Returns [`TraceFileError::Io`] on write failure.
    pub fn finish(mut self) -> Result<ChunkIndex, TraceFileError> {
        self.flush_chunk()?;
        let footer_offset = self.offset;
        self.w.write_all(&FOOTER_MAGIC)?;
        self.w
            .write_all(&(self.entries.len() as u32).to_le_bytes())?;
        self.w.write_all(&self.total.to_le_bytes())?;
        for e in &self.entries {
            self.w.write_all(&e.offset.to_le_bytes())?;
            self.w.write_all(&e.n_insts.to_le_bytes())?;
        }
        self.w.write_all(&footer_offset.to_le_bytes())?;
        self.w.write_all(&END_MAGIC)?;
        self.w.flush()?;
        Ok(ChunkIndex {
            chunk_cap: self.chunk_cap,
            total_insts: self.total,
            chunks: self.entries,
        })
    }
}

impl<F: Read + Write + Seek> ChunkedWriter<F> {
    /// Re-opens a finished v2 stream for appending: reads the existing
    /// footer index, positions the stream at `footer_offset` and
    /// continues writing frames there; [`ChunkedWriter::finish`] then
    /// rewrites footer + trailer past the new frames. (New content is
    /// never shorter than the footer + trailer it overwrites, so no
    /// truncation is needed.)
    ///
    /// # Errors
    ///
    /// Any [`TraceFileError`] from validating the existing stream, or
    /// [`TraceFileError::Io`] on seek/read failure.
    pub fn resume(mut f: F) -> Result<ChunkedWriter<F>, TraceFileError> {
        let index = read_index(&mut f)?;
        f.seek(SeekFrom::End(-(TRAILER_BYTES as i64)))?;
        let mut off = [0u8; 8];
        f.read_exact(&mut off)?;
        let footer_offset = u64::from_le_bytes(off);
        f.seek(SeekFrom::Start(footer_offset))?;
        Ok(ChunkedWriter {
            w: f,
            chunk_cap: index.chunk_cap,
            pending: TraceSoA::new(),
            entries: index.chunks,
            offset: footer_offset,
            total: index.total_insts,
        })
    }
}

/// Streaming reader of v2 chunked traces: yields one decoded
/// [`TraceSoA`] per chunk, then validates footer and trailer against
/// everything seen. Works on any `Read`; no seeking, bounded memory.
pub struct ChunkedTrace<R: Read> {
    r: R,
    flip: Flipper,
    chunk_cap: u32,
    seen: Vec<ChunkEntry>,
    total: u64,
    index: Option<ChunkIndex>,
}

impl<R: Read> ChunkedTrace<R> {
    /// Opens a v2 stream, validating the header.
    ///
    /// # Errors
    ///
    /// [`TraceFileError::BadMagic`] / [`TraceFileError::UnsupportedVersion`]
    /// for foreign or v1 streams, [`TraceFileError::CorruptChunk`] for an
    /// out-of-range chunk capacity, [`TraceFileError::Io`] on read failure.
    pub fn new(mut r: R) -> Result<ChunkedTrace<R>, TraceFileError> {
        let mut flip = Flipper::new();
        let mut head = [0u8; HEADER_BYTES as usize];
        r.read_exact(&mut head)?;
        flip.apply(&mut head);
        if head[0..4] != MAGIC {
            return Err(TraceFileError::BadMagic(head[0..4].try_into().expect("4")));
        }
        let version = u16::from_le_bytes([head[4], head[5]]);
        if version != VERSION {
            return Err(TraceFileError::UnsupportedVersion(version));
        }
        let chunk_cap = u32::from_le_bytes(head[8..12].try_into().expect("4"));
        if !(1..=MAX_CHUNK_INSTS).contains(&chunk_cap) {
            return Err(TraceFileError::CorruptChunk {
                what: "chunk capacity out of range",
                chunk: 0,
                record: 0,
            });
        }
        Ok(ChunkedTrace {
            r,
            flip,
            chunk_cap,
            seen: Vec::new(),
            total: 0,
            index: None,
        })
    }

    /// Chunk capacity declared in the header.
    pub fn chunk_cap(&self) -> u32 {
        self.chunk_cap
    }

    /// The validated footer index; available once
    /// [`ChunkedTrace::next_chunk`] has returned `Ok(None)`.
    pub fn index(&self) -> Option<&ChunkIndex> {
        self.index.as_ref()
    }

    fn fill(&mut self, buf: &mut [u8]) -> io::Result<()> {
        self.r.read_exact(buf)?;
        self.flip.apply(buf);
        Ok(())
    }

    /// Decodes the next chunk; `Ok(None)` once the footer is reached
    /// (after validating footer, trailer and end-of-stream).
    ///
    /// # Errors
    ///
    /// [`TraceFileError::CorruptChunk`] pointing at the offending chunk
    /// and record for any validation failure, [`TraceFileError::Io`] on
    /// read failure (including truncation).
    pub fn next_chunk(&mut self) -> Result<Option<TraceSoA>, TraceFileError> {
        if self.index.is_some() {
            return Ok(None);
        }
        let frame_off = self.flip.pos;
        let chunk = self.seen.len() as u64;
        let corrupt = |what| TraceFileError::CorruptChunk {
            what,
            chunk,
            record: 0,
        };
        let mut magic = [0u8; 4];
        self.fill(&mut magic)?;
        if magic == FOOTER_MAGIC {
            self.read_footer(frame_off)?;
            return Ok(None);
        }
        if magic != CHUNK_MAGIC {
            return Err(corrupt("bad frame magic"));
        }
        let mut head = [0u8; 16];
        self.fill(&mut head)?;
        let n_insts = u32::from_le_bytes(head[0..4].try_into().expect("4"));
        let payload_len = u32::from_le_bytes(head[4..8].try_into().expect("4"));
        let checksum = u64::from_le_bytes(head[8..16].try_into().expect("8"));
        if n_insts == 0 {
            return Err(corrupt("empty chunk"));
        }
        if n_insts > self.chunk_cap {
            return Err(corrupt("chunk exceeds declared capacity"));
        }
        let (lo, hi) = (
            n_insts as u64 * MIN_RECORD_ENC,
            n_insts as u64 * MAX_RECORD_ENC,
        );
        if !(lo..=hi).contains(&(payload_len as u64)) {
            return Err(corrupt("payload length implausible for record count"));
        }
        // Grow organically: a truncated stream stops the allocation at
        // the bytes actually present, whatever the claimed length.
        let mut payload = Vec::new();
        let got = (&mut self.r)
            .take(payload_len as u64)
            .read_to_end(&mut payload)?;
        if got < payload_len as usize {
            return Err(TraceFileError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "truncated chunk payload",
            )));
        }
        self.flip.apply(&mut payload);
        if fnv1a64(&payload) != checksum {
            return Err(corrupt("chunk checksum mismatch"));
        }
        let soa = decode_chunk(&payload, n_insts as usize, chunk)?;
        self.seen.push(ChunkEntry {
            offset: frame_off,
            n_insts,
        });
        self.total += n_insts as u64;
        Ok(Some(soa))
    }

    fn read_footer(&mut self, footer_off: u64) -> Result<(), TraceFileError> {
        let chunk = self.seen.len() as u64;
        let corrupt = |what| TraceFileError::CorruptChunk {
            what,
            chunk,
            record: 0,
        };
        let mut head = [0u8; 12];
        self.fill(&mut head)?;
        let n_chunks = u32::from_le_bytes(head[0..4].try_into().expect("4"));
        let total = u64::from_le_bytes(head[4..12].try_into().expect("8"));
        if n_chunks as usize != self.seen.len() {
            return Err(corrupt("footer chunk count mismatch"));
        }
        if total != self.total {
            return Err(corrupt("footer instruction count mismatch"));
        }
        for k in 0..self.seen.len() {
            let mut e = [0u8; 12];
            self.fill(&mut e)?;
            let offset = u64::from_le_bytes(e[0..8].try_into().expect("8"));
            let n = u32::from_le_bytes(e[8..12].try_into().expect("4"));
            if (ChunkEntry { offset, n_insts: n }) != self.seen[k] {
                return Err(TraceFileError::CorruptChunk {
                    what: "footer index entry mismatch",
                    chunk: k as u64,
                    record: 0,
                });
            }
        }
        let mut tail = [0u8; TRAILER_BYTES as usize];
        self.fill(&mut tail)?;
        if u64::from_le_bytes(tail[0..8].try_into().expect("8")) != footer_off {
            return Err(corrupt("trailer footer offset mismatch"));
        }
        if tail[8..12] != END_MAGIC {
            return Err(corrupt("bad trailing magic"));
        }
        // The stream must end here; junk past the trailer is corruption,
        // not a clean trace (mirrors the v1 trailing-garbage rule).
        let mut probe = [0u8; 1];
        loop {
            match self.r.read(&mut probe) {
                Ok(0) => break,
                Ok(_) => return Err(corrupt("trailing bytes after trailer")),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(TraceFileError::Io(e)),
            }
        }
        self.index = Some(ChunkIndex {
            chunk_cap: self.chunk_cap,
            total_insts: self.total,
            chunks: self.seen.clone(),
        });
        Ok(())
    }
}

/// Decodes one chunk payload into columns, re-validating every record.
fn decode_chunk(payload: &[u8], n: usize, chunk: u64) -> Result<TraceSoA, TraceFileError> {
    struct Cur<'a> {
        buf: &'a [u8],
        pos: usize,
    }
    impl<'a> Cur<'a> {
        fn bytes(&mut self, n: usize) -> Option<&'a [u8]> {
            let end = self.pos.checked_add(n)?;
            if end > self.buf.len() {
                return None;
            }
            let s = &self.buf[self.pos..end];
            self.pos = end;
            Some(s)
        }

        fn varint(&mut self) -> Result<u64, &'static str> {
            let mut v = 0u64;
            let mut shift = 0u32;
            loop {
                let b = *self.buf.get(self.pos).ok_or("truncated varint")?;
                self.pos += 1;
                if shift == 63 && b > 1 {
                    return Err("varint overflows u64");
                }
                v |= ((b & 0x7f) as u64) << shift;
                if b & 0x80 == 0 {
                    return Ok(v);
                }
                shift += 7;
                if shift > 63 {
                    return Err("varint too long");
                }
            }
        }
    }

    let corrupt = |what, record| TraceFileError::CorruptChunk {
        what,
        chunk,
        record,
    };
    let mut cur = Cur {
        buf: payload,
        pos: 0,
    };
    let delta_col = |cur: &mut Cur| -> Result<Vec<u64>, TraceFileError> {
        let mut out = Vec::with_capacity(n);
        let mut prev = 0u64;
        for _ in 0..n {
            let z = cur
                .varint()
                .map_err(|what| corrupt(what, out.len() as u64))?;
            prev = prev.wrapping_add(unzigzag(z) as u64);
            out.push(prev);
        }
        Ok(out)
    };
    let truncated = |cur: &Cur, width: usize| {
        corrupt(
            "truncated chunk payload",
            ((payload.len() - cur.pos) / width) as u64,
        )
    };

    let pc = delta_col(&mut cur)?;
    let class = cur.bytes(n).ok_or_else(|| truncated(&cur, 1))?;
    let flags = cur.bytes(n).ok_or_else(|| truncated(&cur, 1))?;
    let srcs = cur.bytes(3 * n).ok_or_else(|| truncated(&cur, 3))?;
    let dst = cur.bytes(n).ok_or_else(|| truncated(&cur, 1))?;
    let addr = delta_col(&mut cur)?;
    let asize = cur.bytes(n).ok_or_else(|| truncated(&cur, 1))?;
    let btarget = delta_col(&mut cur)?;
    let value = delta_col(&mut cur)?;
    if cur.pos != payload.len() {
        return Err(corrupt("trailing bytes in chunk payload", n as u64));
    }

    let reg = |b: u8, i: usize| -> Result<Option<Reg>, TraceFileError> {
        if b == crate::REG_NONE {
            Ok(None)
        } else if (b as usize) < Reg::COUNT {
            Ok(Some(Reg::int(b)))
        } else {
            Err(corrupt("register index out of range", i as u64))
        }
    };
    let mut soa = TraceSoA::with_capacity(n);
    for i in 0..n {
        if class[i] as usize >= CLASS_COUNT {
            return Err(corrupt("unknown instruction class", i as u64));
        }
        let f = flags[i];
        if f & !(FLAG_HAS_MEM | FLAG_HAS_BRANCH | FLAG_TAKEN | (3 << FLAG_BKIND_SHIFT)) != 0 {
            return Err(corrupt("invalid flag bits", i as u64));
        }
        let has_mem = f & FLAG_HAS_MEM != 0;
        let has_branch = f & FLAG_HAS_BRANCH != 0;
        if !has_branch && f & (FLAG_TAKEN | (3 << FLAG_BKIND_SHIFT)) != 0 {
            return Err(corrupt("branch flags without branch info", i as u64));
        }
        if !has_mem && (addr[i] != 0 || asize[i] != 0) {
            return Err(corrupt("memory fields without access", i as u64));
        }
        if !has_branch && btarget[i] != 0 {
            return Err(corrupt("branch target without branch info", i as u64));
        }
        let inst = Inst {
            pc: pc[i],
            kind: crate::kind_of(class[i]),
            srcs: [
                reg(srcs[3 * i], i)?,
                reg(srcs[3 * i + 1], i)?,
                reg(srcs[3 * i + 2], i)?,
            ],
            dst: reg(dst[i], i)?,
            mem: has_mem.then(|| MemAccess {
                addr: addr[i],
                size: asize[i],
            }),
            branch: has_branch.then(|| BranchInfo {
                kind: bkind_of(f >> FLAG_BKIND_SHIFT),
                taken: f & FLAG_TAKEN != 0,
                target: btarget[i],
            }),
            value: value[i],
        };
        soa.push(&inst);
    }
    Ok(soa)
}

/// Reads the footer index of a seekable v2 stream without decoding any
/// chunk: header, trailer, then the footer the trailer points at.
///
/// # Errors
///
/// Any [`TraceFileError`] describing the malformed structure, or
/// [`TraceFileError::Io`] on seek/read failure.
pub fn read_index<R: Read + Seek>(r: &mut R) -> Result<ChunkIndex, TraceFileError> {
    let corrupt = |what, chunk| TraceFileError::CorruptChunk {
        what,
        chunk,
        record: 0,
    };
    r.seek(SeekFrom::Start(0))?;
    let mut head = [0u8; HEADER_BYTES as usize];
    r.read_exact(&mut head)?;
    if head[0..4] != MAGIC {
        return Err(TraceFileError::BadMagic(head[0..4].try_into().expect("4")));
    }
    let version = u16::from_le_bytes([head[4], head[5]]);
    if version != VERSION {
        return Err(TraceFileError::UnsupportedVersion(version));
    }
    let chunk_cap = u32::from_le_bytes(head[8..12].try_into().expect("4"));
    if !(1..=MAX_CHUNK_INSTS).contains(&chunk_cap) {
        return Err(corrupt("chunk capacity out of range", 0));
    }
    let end = r.seek(SeekFrom::End(0))?;
    if end < HEADER_BYTES + 16 + TRAILER_BYTES {
        return Err(corrupt("stream too short for footer and trailer", 0));
    }
    r.seek(SeekFrom::End(-(TRAILER_BYTES as i64)))?;
    let mut tail = [0u8; TRAILER_BYTES as usize];
    r.read_exact(&mut tail)?;
    if tail[8..12] != END_MAGIC {
        return Err(corrupt("bad trailing magic", 0));
    }
    let footer_offset = u64::from_le_bytes(tail[0..8].try_into().expect("8"));
    if footer_offset < HEADER_BYTES || footer_offset > end - TRAILER_BYTES - 16 {
        return Err(corrupt("trailer footer offset out of range", 0));
    }
    r.seek(SeekFrom::Start(footer_offset))?;
    let mut fh = [0u8; 16];
    r.read_exact(&mut fh)?;
    if fh[0..4] != FOOTER_MAGIC {
        return Err(corrupt("bad footer magic", 0));
    }
    let n_chunks = u32::from_le_bytes(fh[4..8].try_into().expect("4"));
    let total = u64::from_le_bytes(fh[8..16].try_into().expect("8"));
    let mut chunks = Vec::with_capacity(n_chunks.min(MAX_PREALLOC_CHUNKS) as usize);
    let mut prev_end = HEADER_BYTES;
    let mut counted = 0u64;
    for k in 0..n_chunks {
        let mut e = [0u8; 12];
        r.read_exact(&mut e)?;
        let offset = u64::from_le_bytes(e[0..8].try_into().expect("8"));
        let n_insts = u32::from_le_bytes(e[8..12].try_into().expect("4"));
        if offset < prev_end || offset >= footer_offset {
            return Err(corrupt("footer entry offset out of order", k as u64));
        }
        if n_insts == 0 || n_insts > chunk_cap {
            return Err(corrupt("footer entry count out of range", k as u64));
        }
        prev_end = offset + FRAME_HEADER_BYTES;
        counted += n_insts as u64;
        chunks.push(ChunkEntry { offset, n_insts });
    }
    if counted != total {
        return Err(corrupt(
            "footer instruction count mismatch",
            n_chunks as u64,
        ));
    }
    Ok(ChunkIndex {
        chunk_cap,
        total_insts: total,
        chunks,
    })
}

/// Seeks to chunk `k` of an indexed stream and decodes it.
///
/// # Panics
///
/// Panics if `k >= index.chunks.len()`.
///
/// # Errors
///
/// [`TraceFileError::CorruptChunk`] if the frame disagrees with the
/// index or fails validation, [`TraceFileError::Io`] on seek/read
/// failure.
pub fn read_chunk_at<R: Read + Seek>(
    r: &mut R,
    index: &ChunkIndex,
    k: usize,
) -> Result<TraceSoA, TraceFileError> {
    let entry = index.chunks[k];
    let corrupt = |what| TraceFileError::CorruptChunk {
        what,
        chunk: k as u64,
        record: 0,
    };
    r.seek(SeekFrom::Start(entry.offset))?;
    let mut head = [0u8; FRAME_HEADER_BYTES as usize];
    r.read_exact(&mut head)?;
    if head[0..4] != CHUNK_MAGIC {
        return Err(corrupt("bad frame magic"));
    }
    let n_insts = u32::from_le_bytes(head[4..8].try_into().expect("4"));
    let payload_len = u32::from_le_bytes(head[8..12].try_into().expect("4"));
    let checksum = u64::from_le_bytes(head[12..20].try_into().expect("8"));
    if n_insts != entry.n_insts {
        return Err(corrupt("frame record count disagrees with index"));
    }
    if payload_len as u64 > n_insts as u64 * MAX_RECORD_ENC {
        return Err(corrupt("payload length implausible for record count"));
    }
    let mut payload = vec![0u8; payload_len as usize];
    r.read_exact(&mut payload)?;
    if fnv1a64(&payload) != checksum {
        return Err(corrupt("chunk checksum mismatch"));
    }
    decode_chunk(&payload, n_insts as usize, k as u64)
}

/// Decodes a whole v2 stream into one materialized [`TraceSoA`]
/// (convenience for tools; the simulators stream chunks instead).
///
/// # Errors
///
/// Any [`TraceFileError`] from the streaming reader.
pub fn read_all<R: Read>(r: R) -> Result<TraceSoA, TraceFileError> {
    let mut trace = ChunkedTrace::new(r)?;
    let mut soa = TraceSoA::new();
    while let Some(chunk) = trace.next_chunk()? {
        soa.append_from(&chunk);
    }
    Ok(soa)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BranchKind, InstBuilder, OpKind};

    fn sample(n: usize) -> Vec<Inst> {
        let r = Reg::int;
        (0..n)
            .map(|i| match i % 7 {
                0 => Inst::load(0x1000 + 4 * i as u64, r(1), 8, r(2), 0x8000 + 64 * i as u64)
                    .with_value(i as u64),
                1 => Inst::alu(0x1000 + 4 * i as u64, &[r(2), r(3)], r(4)),
                2 => Inst::store(0x1000 + 4 * i as u64, r(4), 0, r(5), 0x9000),
                3 => Inst::cond_branch(0x1000 + 4 * i as u64, r(4), i % 2 == 0, 0x2000),
                4 => Inst::prefetch(0x1000 + 4 * i as u64, r(3), 0xa000),
                5 => Inst::casa(0x1000 + 4 * i as u64, r(1), r(2), r(3), r(4), 0xb000),
                _ => Inst::nop(0x1000 + 4 * i as u64),
            })
            .collect()
    }

    fn written(insts: &[Inst], cap: u32) -> (Vec<u8>, ChunkIndex) {
        let mut buf = Vec::new();
        let mut w = ChunkedWriter::new(&mut buf, cap).unwrap();
        for i in insts {
            w.push(i).unwrap();
        }
        let index = w.finish().unwrap();
        (buf, index)
    }

    #[test]
    fn round_trip_across_chunk_sizes() {
        let insts = sample(100);
        for cap in [1u32, 3, 64, 100, 1000] {
            let (buf, index) = written(&insts, cap);
            assert_eq!(index.total_insts, 100);
            let soa = read_all(buf.as_slice()).unwrap();
            assert_eq!(soa.len(), insts.len());
            for (i, inst) in insts.iter().enumerate() {
                assert_eq!(soa.get(i), *inst, "cap {cap}, instruction {i}");
            }
        }
    }

    #[test]
    fn empty_trace_round_trips() {
        let (buf, index) = written(&[], 16);
        assert_eq!(index.chunks.len(), 0);
        assert_eq!(read_all(buf.as_slice()).unwrap().len(), 0);
    }

    #[test]
    fn oddball_branch_info_on_non_branch_round_trips() {
        // The SoA supports branch metadata on a non-branch class (v1
        // rejects it); v2 must round-trip whatever the builder makes.
        let insts = vec![InstBuilder::new(0x130, OpKind::Alu)
            .branch(BranchKind::Call, false, 0x5000)
            .build()];
        let (buf, _) = written(&insts, 4);
        let soa = read_all(buf.as_slice()).unwrap();
        assert_eq!(soa.get(0), insts[0]);
    }

    #[test]
    fn streaming_reader_yields_sized_chunks() {
        let insts = sample(10);
        let (buf, _) = written(&insts, 4);
        let mut r = ChunkedTrace::new(buf.as_slice()).unwrap();
        let mut sizes = Vec::new();
        while let Some(c) = r.next_chunk().unwrap() {
            sizes.push(c.len());
        }
        assert_eq!(sizes, vec![4, 4, 2]);
        assert_eq!(r.index().unwrap().total_insts, 10);
    }

    #[test]
    fn index_and_random_access_agree() {
        let insts = sample(50);
        let (buf, index) = written(&insts, 8);
        let mut c = std::io::Cursor::new(buf);
        let re = read_index(&mut c).unwrap();
        assert_eq!(re, index);
        assert_eq!(re.locate(0), Some((0, 0)));
        assert_eq!(re.locate(7), Some((0, 0)));
        assert_eq!(re.locate(8), Some((1, 8)));
        assert_eq!(re.locate(49), Some((6, 48)));
        assert_eq!(re.locate(50), None);
        for (k, entry) in re.chunks.iter().enumerate() {
            let soa = read_chunk_at(&mut c, &re, k).unwrap();
            assert_eq!(soa.len(), entry.n_insts as usize);
            let base = 8 * k;
            for i in 0..soa.len() {
                assert_eq!(soa.get(i), insts[base + i], "chunk {k} slot {i}");
            }
        }
    }

    #[test]
    fn resume_appends_identically() {
        let insts = sample(30);
        // Whole trace in one go...
        let (straight, _) = written(&insts, 8);
        // ...versus write 13, finish, resume, append 17.
        let mut f = std::io::Cursor::new(Vec::new());
        let mut w = ChunkedWriter::new(&mut f, 8).unwrap();
        for i in &insts[..13] {
            w.push(i).unwrap();
        }
        w.finish().unwrap();
        let mut w = ChunkedWriter::resume(&mut f).unwrap();
        for i in &insts[13..] {
            w.push(i).unwrap();
        }
        let index = w.finish().unwrap();
        assert_eq!(index.total_insts, 30);
        let soa = read_all(f.get_ref().as_slice()).unwrap();
        for (i, inst) in insts.iter().enumerate() {
            assert_eq!(soa.get(i), *inst, "instruction {i}");
        }
        // Chunk boundaries differ (13 splits as 8+5), so the bytes need
        // not match `straight`; the decoded trace must.
        assert_eq!(soa.len(), read_all(straight.as_slice()).unwrap().len());
    }

    #[test]
    fn checksum_catches_payload_corruption() {
        let (mut buf, index) = written(&sample(20), 8);
        // Flip a byte inside the first chunk's payload.
        let off = index.chunks[0].offset as usize + FRAME_HEADER_BYTES as usize;
        buf[off] ^= 0x40;
        match read_all(buf.as_slice()) {
            Err(TraceFileError::CorruptChunk { what, chunk: 0, .. }) => {
                assert!(what.contains("checksum"), "got {what}");
            }
            other => panic!("expected checksum corruption, got {other:?}"),
        }
    }

    #[test]
    fn truncation_is_io_error() {
        let (buf, _) = written(&sample(20), 8);
        for cut in [buf.len() - 1, buf.len() - 13, HEADER_BYTES as usize + 3] {
            assert!(
                matches!(
                    read_all(&buf[..cut]),
                    Err(TraceFileError::Io(_) | TraceFileError::CorruptChunk { .. })
                ),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let (mut buf, _) = written(&sample(5), 4);
        buf.push(0x5a);
        match read_all(buf.as_slice()) {
            Err(TraceFileError::CorruptChunk { what, .. }) => {
                assert!(what.contains("trailing"), "got {what}");
            }
            other => panic!("expected trailing-garbage corruption, got {other:?}"),
        }
    }

    #[test]
    fn v1_stream_reports_bad_magic() {
        let mut v1 = Vec::new();
        crate::tracefile::write(&mut v1, &sample(3)).unwrap();
        assert!(matches!(
            read_all(v1.as_slice()),
            Err(TraceFileError::BadMagic(m)) if &m == b"MLPT"
        ));
    }

    #[test]
    fn hostile_header_cannot_force_allocation() {
        // A 20-byte stream claiming a maximal chunk: must die on the
        // missing payload bytes, not allocate for the claim.
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&0u16.to_le_bytes());
        buf.extend_from_slice(&MAX_CHUNK_INSTS.to_le_bytes());
        buf.extend_from_slice(&CHUNK_MAGIC);
        buf.extend_from_slice(&MAX_CHUNK_INSTS.to_le_bytes());
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        let mut r = ChunkedTrace::new(buf.as_slice()).unwrap();
        assert!(matches!(
            r.next_chunk(),
            Err(TraceFileError::Io(_) | TraceFileError::CorruptChunk { .. })
        ));
    }

    #[test]
    fn varint_extremes_round_trip() {
        let mut buf = Vec::new();
        for v in [0u64, 1, 127, 128, u64::MAX, u64::MAX - 1, 1 << 63] {
            buf.clear();
            put_varint(&mut buf, v);
            let mut soa_insts = vec![Inst::nop(v)];
            soa_insts[0].value = v;
            let (bytes, _) = written(&soa_insts, 1);
            let back = read_all(bytes.as_slice()).unwrap();
            assert_eq!(back.get(0).pc, v);
            assert_eq!(back.get(0).value, v);
        }
        assert_eq!(zigzag(unzigzag(u64::MAX)), u64::MAX);
        assert_eq!(unzigzag(zigzag(i64::MIN)), i64::MIN);
    }
}
