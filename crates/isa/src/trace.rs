use crate::Inst;

/// A source of dynamic instructions.
///
/// Both simulators consume traces through this trait so that workloads can
/// be generated on the fly (the synthetic workload generators implement it
/// directly) or replayed from memory or disk.
///
/// `TraceSource` is intentionally just a named, sealed-free refinement of
/// [`Iterator`] — anything that yields [`Inst`] records is a trace.
///
/// # Examples
///
/// ```
/// use mlp_isa::{Inst, TraceSource, VecTrace};
///
/// let mut t = VecTrace::new(vec![Inst::nop(0x100), Inst::nop(0x104)]);
/// assert_eq!(t.next_inst().unwrap().pc, 0x100);
/// assert_eq!(t.next_inst().unwrap().pc, 0x104);
/// assert!(t.next_inst().is_none());
/// ```
pub trait TraceSource {
    /// Produces the next instruction of the dynamic stream, or `None` at
    /// end of trace.
    fn next_inst(&mut self) -> Option<Inst>;

    /// Adapts this source into a standard [`Iterator`].
    fn into_iter_insts(self) -> IntoIterInsts<Self>
    where
        Self: Sized,
    {
        IntoIterInsts { source: self }
    }

    /// Collects up to `n` instructions into a vector.
    fn take_insts(&mut self, n: usize) -> Vec<Inst> {
        let mut v = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            match self.next_inst() {
                Some(i) => v.push(i),
                None => break,
            }
        }
        v
    }

    /// Skips `n` instructions (e.g. a warm-up prefix), returning how many
    /// were actually skipped.
    fn skip_insts(&mut self, n: usize) -> usize {
        for k in 0..n {
            if self.next_inst().is_none() {
                return k;
            }
        }
        n
    }
}

/// Iterator adapter returned by [`TraceSource::into_iter_insts`].
#[derive(Debug)]
pub struct IntoIterInsts<T> {
    source: T,
}

impl<T: TraceSource> Iterator for IntoIterInsts<T> {
    type Item = Inst;

    fn next(&mut self) -> Option<Inst> {
        self.source.next_inst()
    }
}

/// Every iterator of instructions is a trace source.
impl<I> TraceSource for I
where
    I: Iterator<Item = Inst>,
{
    fn next_inst(&mut self) -> Option<Inst> {
        self.next()
    }
}

/// An in-memory trace backed by a `Vec<Inst>`, replayable from the start.
///
/// # Examples
///
/// ```
/// use mlp_isa::{Inst, TraceSource, VecTrace};
///
/// let mut t = VecTrace::new(vec![Inst::nop(0)]);
/// assert!(t.next_inst().is_some());
/// t.rewind();
/// assert!(t.next_inst().is_some());
/// ```
#[derive(Clone, Debug, Default)]
pub struct VecTrace {
    insts: Vec<Inst>,
    pos: usize,
}

impl VecTrace {
    /// Creates a trace over `insts`.
    pub fn new(insts: Vec<Inst>) -> VecTrace {
        VecTrace { insts, pos: 0 }
    }

    /// Number of instructions in the trace.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Resets the replay cursor to the beginning.
    pub fn rewind(&mut self) {
        self.pos = 0;
    }

    /// Read-only view of the underlying instructions.
    pub fn as_slice(&self) -> &[Inst] {
        &self.insts
    }

    /// Consumes the trace, returning the underlying instructions.
    pub fn into_inner(self) -> Vec<Inst> {
        self.insts
    }
}

impl TraceSource for VecTrace {
    fn next_inst(&mut self) -> Option<Inst> {
        let i = self.insts.get(self.pos).copied();
        if i.is_some() {
            self.pos += 1;
        }
        i
    }
}

impl FromIterator<Inst> for VecTrace {
    fn from_iter<T: IntoIterator<Item = Inst>>(iter: T) -> VecTrace {
        VecTrace::new(iter.into_iter().collect())
    }
}

impl Extend<Inst> for VecTrace {
    fn extend<T: IntoIterator<Item = Inst>>(&mut self, iter: T) {
        self.insts.extend(iter);
    }
}

/// A borrowing trace over a slice of instructions.
#[derive(Clone, Copy, Debug)]
pub struct SliceTrace<'a> {
    insts: &'a [Inst],
    pos: usize,
}

impl<'a> SliceTrace<'a> {
    /// Creates a trace over the borrowed `insts`.
    pub fn new(insts: &'a [Inst]) -> SliceTrace<'a> {
        SliceTrace { insts, pos: 0 }
    }
}

impl TraceSource for SliceTrace<'_> {
    fn next_inst(&mut self) -> Option<Inst> {
        let i = self.insts.get(self.pos).copied();
        if i.is_some() {
            self.pos += 1;
        }
        i
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Reg;

    fn three() -> Vec<Inst> {
        vec![Inst::nop(0), Inst::nop(4), Inst::nop(8)]
    }

    #[test]
    fn vec_trace_replays_in_order() {
        let mut t = VecTrace::new(three());
        let pcs: Vec<u64> = std::iter::from_fn(|| t.next_inst()).map(|i| i.pc).collect();
        assert_eq!(pcs, vec![0, 4, 8]);
    }

    #[test]
    fn rewind_restarts() {
        let mut t = VecTrace::new(three());
        t.skip_insts(3);
        assert!(t.next_inst().is_none());
        t.rewind();
        assert_eq!(t.next_inst().unwrap().pc, 0);
    }

    #[test]
    fn take_insts_stops_at_end() {
        let mut t = VecTrace::new(three());
        let got = t.take_insts(10);
        assert_eq!(got.len(), 3);
    }

    #[test]
    fn skip_counts_actual() {
        let mut t = VecTrace::new(three());
        assert_eq!(t.skip_insts(2), 2);
        assert_eq!(t.skip_insts(5), 1);
    }

    #[test]
    fn iterators_are_traces() {
        let v = three();
        let mut it = v.clone().into_iter();
        assert_eq!(TraceSource::next_inst(&mut it).unwrap().pc, 0);
    }

    #[test]
    fn slice_trace_borrows() {
        let v = three();
        let mut s = SliceTrace::new(&v);
        assert_eq!(s.next_inst().unwrap().pc, 0);
        let mut s2 = SliceTrace::new(&v);
        assert_eq!(s2.next_inst().unwrap().pc, 0);
    }

    #[test]
    fn from_iterator_collects() {
        let t: VecTrace = three().into_iter().collect();
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    fn extend_appends() {
        let mut t = VecTrace::new(three());
        t.extend([Inst::alu(12, &[Reg::int(1)], Reg::int(2))]);
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn into_iter_insts_adapter() {
        let t = VecTrace::new(three());
        assert_eq!(t.into_iter_insts().count(), 3);
    }
}
