//! Instruction and trace model for the MLP epoch-model simulator.
//!
//! This crate defines the dynamic-instruction-stream (DIS) vocabulary shared
//! by every simulator in the workspace: the [`Inst`] trace record, its
//! [`OpKind`] instruction classes (including the SPARC-flavoured
//! *serializing* instructions `MEMBAR`/`CASA` that the paper shows are a
//! major MLP impediment), architectural [`Reg`]isters, and streaming trace
//! abstractions ([`TraceSource`]) plus a compact binary trace format in
//! [`tracefile`].
//!
//! The model is deliberately minimal: the epoch model of MLP (Chou, Fahs &
//! Abraham, ISCA 2004) only needs instruction *classes*, *register and
//! memory dependences*, *effective addresses*, *branch outcomes* and *loaded
//! values* — not full ISA semantics.
//!
//! # Examples
//!
//! Build a tiny dependent-load sequence (the paper's Example 1):
//!
//! ```
//! use mlp_isa::{Inst, Reg};
//!
//! let r = Reg::int;
//! let trace = vec![
//!     Inst::load(0x100, r(1), 0, r(2), 0xdead_0000),   // i1: load 0(r1)->r2
//!     Inst::alu(0x104, &[r(2), r(3)], r(4)),           // i2: add r2,r3->r4
//!     Inst::load(0x108, r(4), 0, r(5), 0xbeef_0000),   // i3: load (r4)->r5
//!     Inst::alu(0x10c, &[r(0), r(1)], r(2)),           // i4: add r0,r1->r2
//!     Inst::load(0x110, r(7), 0, r(8), 0xfeed_0000),   // i5: load (r7)->r8
//! ];
//! assert_eq!(trace.iter().filter(|i| i.is_load()).count(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chunked;
mod inst;
mod op;
mod reg;
mod soa;
mod stats;
mod trace;
pub mod tracefile;

pub use inst::{BranchInfo, Inst, InstBuilder, MemAccess};
pub use op::{BranchKind, OpKind};
pub use reg::Reg;
pub use soa::{
    class_of, kind_of, ChunkedSoaSource, InstSource, SharedSoaSource, SoAChunks,
    StreamingSoaSource, TraceSoA, ATTR_BRANCH, ATTR_READS_MEM, ATTR_SERIALIZING, ATTR_WRITES_MEM,
    AVAIL_SLOTS, CLASS_ALU, CLASS_ATOMIC, CLASS_ATTRS, CLASS_BR_CALL, CLASS_BR_COND, CLASS_BR_IND,
    CLASS_BR_RET, CLASS_COUNT, CLASS_LOAD, CLASS_MEMBAR, CLASS_NOP, CLASS_PREFETCH, CLASS_STORE,
    DEP_READ_NONE, DEP_WRITE_NONE, REG_NONE,
};
pub use stats::{InstMix, TraceStats};
pub use trace::{SliceTrace, TraceSource, VecTrace};

/// Cache-line size, in bytes, assumed throughout the workspace (the paper
/// uses 64-byte lines in every cache level).
pub const LINE_BYTES: u64 = 64;

/// Returns the cache-line address (line-aligned) containing `addr`.
///
/// # Examples
///
/// ```
/// assert_eq!(mlp_isa::line_of(0x1047), 0x1040);
/// ```
#[inline]
pub fn line_of(addr: u64) -> u64 {
    addr & !(LINE_BYTES - 1)
}
