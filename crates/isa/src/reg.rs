use std::fmt;

/// An architectural register identifier.
///
/// The trace ISA models a flat file of 64 integer registers, `r0`–`r63`,
/// mirroring a simplified SPARC V9 integer state. Register `r0` is the
/// hard-wired zero register (`%g0` in SPARC): it never carries a dependence,
/// and both simulators treat reads of it as always-available and writes to
/// it as discarded.
///
/// # Examples
///
/// ```
/// use mlp_isa::Reg;
///
/// let r5 = Reg::int(5);
/// assert_eq!(r5.index(), 5);
/// assert!(!r5.is_zero());
/// assert!(Reg::ZERO.is_zero());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// Number of architectural integer registers in the trace ISA.
    pub const COUNT: usize = 64;

    /// The hard-wired zero register (`r0`, SPARC `%g0`).
    pub const ZERO: Reg = Reg(0);

    /// Creates an integer register `r{index}`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= Reg::COUNT`.
    #[inline]
    pub fn int(index: u8) -> Reg {
        assert!(
            (index as usize) < Self::COUNT,
            "register index {index} out of range (max {})",
            Self::COUNT - 1
        );
        Reg(index)
    }

    /// Creates a register without bounds checking the index.
    ///
    /// Out-of-range indices are masked into range; prefer [`Reg::int`]
    /// unless the caller has already validated the index.
    #[inline]
    pub fn int_masked(index: u8) -> Reg {
        Reg(index % Self::COUNT as u8)
    }

    /// The register's index within the architectural file.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is the hard-wired zero register, which never carries a
    /// data dependence.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl From<Reg> for usize {
    fn from(r: Reg) -> usize {
        r.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_register_identity() {
        assert!(Reg::ZERO.is_zero());
        assert!(Reg::int(0).is_zero());
        assert!(!Reg::int(1).is_zero());
    }

    #[test]
    fn index_round_trip() {
        for i in 0..Reg::COUNT as u8 {
            assert_eq!(Reg::int(i).index(), i as usize);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let _ = Reg::int(64);
    }

    #[test]
    fn masked_wraps() {
        assert_eq!(Reg::int_masked(64), Reg::int(0));
        assert_eq!(Reg::int_masked(65), Reg::int(1));
    }

    #[test]
    fn display_matches_debug() {
        assert_eq!(format!("{}", Reg::int(17)), "r17");
        assert_eq!(format!("{:?}", Reg::int(17)), "r17");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(Reg::int(3) < Reg::int(4));
    }
}
