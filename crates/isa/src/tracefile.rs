//! Compact binary trace format.
//!
//! Traces are usually generated on the fly, but persisting them is useful
//! for cross-simulator determinism checks and for sharing workloads. The
//! format is a little-endian stream of fixed-size records behind a small
//! header; it favours simplicity and robust validation over density.
//!
//! Layout:
//!
//! ```text
//! header:  magic "MLPT" | version u16 | reserved u16 | count u64
//! record:  pc u64 | value u64 | mem_addr u64 | br_target u64 |
//!          kind u8 | srcs [u8;3] | dst u8 | mem_size u8 | flags u8 | pad u8
//! ```
//!
//! `0xff` encodes an absent register slot. Flags: bit0 = has-mem,
//! bit1 = has-branch, bit2 = branch-taken.
//!
//! # Examples
//!
//! ```
//! use mlp_isa::{tracefile, Inst, Reg};
//!
//! let trace = vec![Inst::load(0x100, Reg::int(1), 0, Reg::int(2), 0x8000)];
//! let mut buf = Vec::new();
//! tracefile::write(&mut buf, &trace)?;
//! let back = tracefile::read(&mut buf.as_slice())?;
//! assert_eq!(back, trace);
//! # Ok::<(), tracefile::TraceFileError>(())
//! ```

use crate::{BranchInfo, BranchKind, Inst, MemAccess, OpKind, Reg};
use std::error::Error;
use std::fmt;
use std::io::{self, Read, Write};

const MAGIC: [u8; 4] = *b"MLPT";
const VERSION: u16 = 1;
const NO_REG: u8 = 0xff;
/// On-disk size of one v1 instruction record.
pub const RECORD_BYTES: usize = 40;

/// Error produced when reading or writing a binary trace.
#[derive(Debug)]
pub enum TraceFileError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream does not start with the `MLPT` magic.
    BadMagic([u8; 4]),
    /// The format version is not supported by this library.
    UnsupportedVersion(u16),
    /// A record contained an invalid field (bad kind, register, flag) or
    /// the stream carried bytes beyond the declared record count. The
    /// index names the offending record (0-based; equal to the declared
    /// count for trailing garbage), so corruption reports point at the
    /// exact spot in the file.
    Corrupt {
        /// What was wrong with the record.
        what: &'static str,
        /// Index of the offending record.
        record: u64,
    },
    /// A v2 chunked stream carried an invalid frame: bad frame magic,
    /// checksum mismatch, a record that fails validation, an
    /// inconsistent footer index, or trailing bytes. Carries both the
    /// chunk ordinal and the record index *within* that chunk so
    /// corruption reports point at the exact spot in the file.
    CorruptChunk {
        /// What was wrong with the frame.
        what: &'static str,
        /// Ordinal of the offending chunk (0-based; equal to the chunk
        /// count for footer/trailer problems).
        chunk: u64,
        /// Index of the offending record within the chunk (0 when the
        /// problem is not tied to one record).
        record: u64,
    },
}

impl fmt::Display for TraceFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceFileError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceFileError::BadMagic(m) => write!(f, "bad trace magic {m:02x?}"),
            TraceFileError::UnsupportedVersion(v) => {
                write!(f, "unsupported trace version {v}")
            }
            TraceFileError::Corrupt { what, record } => {
                write!(f, "corrupt trace record {record}: {what}")
            }
            TraceFileError::CorruptChunk {
                what,
                chunk,
                record,
            } => {
                write!(f, "corrupt trace chunk {chunk} record {record}: {what}")
            }
        }
    }
}

impl Error for TraceFileError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceFileError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceFileError {
    fn from(e: io::Error) -> TraceFileError {
        TraceFileError::Io(e)
    }
}

fn kind_code(kind: OpKind) -> u8 {
    match kind {
        OpKind::Alu => 0,
        OpKind::Load => 1,
        OpKind::Store => 2,
        OpKind::Prefetch => 3,
        OpKind::Branch(BranchKind::Conditional) => 4,
        OpKind::Branch(BranchKind::Call) => 5,
        OpKind::Branch(BranchKind::Return) => 6,
        OpKind::Branch(BranchKind::Indirect) => 7,
        OpKind::Membar => 8,
        OpKind::Atomic => 9,
        OpKind::Nop => 10,
    }
}

/// Decodes a kind byte; the error is the bare description, the caller
/// attaches the record index.
fn code_kind(code: u8) -> Result<OpKind, &'static str> {
    Ok(match code {
        0 => OpKind::Alu,
        1 => OpKind::Load,
        2 => OpKind::Store,
        3 => OpKind::Prefetch,
        4 => OpKind::Branch(BranchKind::Conditional),
        5 => OpKind::Branch(BranchKind::Call),
        6 => OpKind::Branch(BranchKind::Return),
        7 => OpKind::Branch(BranchKind::Indirect),
        8 => OpKind::Membar,
        9 => OpKind::Atomic,
        10 => OpKind::Nop,
        _ => return Err("unknown instruction kind"),
    })
}

/// Writes `insts` as a binary trace to `w`.
///
/// A `&mut` writer can be passed since `Write` is implemented for mutable
/// references.
///
/// # Errors
///
/// Returns [`TraceFileError::Io`] on any underlying write failure.
pub fn write<W: Write>(mut w: W, insts: &[Inst]) -> Result<(), TraceFileError> {
    w.write_all(&MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&0u16.to_le_bytes())?;
    w.write_all(&(insts.len() as u64).to_le_bytes())?;
    let mut rec = [0u8; RECORD_BYTES];
    for i in insts {
        rec[0..8].copy_from_slice(&i.pc.to_le_bytes());
        rec[8..16].copy_from_slice(&i.value.to_le_bytes());
        let (maddr, msize, mflag) = match i.mem {
            Some(m) => (m.addr, m.size, 1u8),
            None => (0, 0, 0),
        };
        rec[16..24].copy_from_slice(&maddr.to_le_bytes());
        let (btgt, bflags) = match i.branch {
            Some(b) => (b.target, 2u8 | if b.taken { 4 } else { 0 }),
            None => (0, 0),
        };
        rec[24..32].copy_from_slice(&btgt.to_le_bytes());
        rec[32] = kind_code(i.kind);
        for (k, slot) in i.srcs.iter().enumerate() {
            rec[33 + k] = slot.map(|r| r.index() as u8).unwrap_or(NO_REG);
        }
        rec[36] = i.dst.map(|r| r.index() as u8).unwrap_or(NO_REG);
        rec[37] = msize;
        rec[38] = mflag | bflags;
        rec[39] = 0;
        w.write_all(&rec)?;
    }
    Ok(())
}

/// Decodes a register slot; the error is the bare description, the
/// caller attaches the record index.
fn decode_reg(b: u8) -> Result<Option<Reg>, &'static str> {
    if b == NO_REG {
        Ok(None)
    } else if (b as usize) < Reg::COUNT {
        Ok(Some(Reg::int(b)))
    } else {
        Err("register index out of range")
    }
}

/// Largest record count we pre-reserve for. A hostile header can declare
/// any `count` up to `u64::MAX`; reserving for it up front would let a
/// 16-byte input allocate gigabytes before the first failing read. Above
/// this cap the vector grows organically, bounded by the bytes actually
/// present in the stream.
const MAX_PREALLOC_RECORDS: u64 = 1 << 16;

/// A `Read` adapter that XORs one bit of the stream at a fixed bit
/// offset — the `trace-bitflip` fault-injection site. Deterministic: the
/// flipped bit depends only on the armed offset and the read position.
struct BitFlip<R> {
    inner: R,
    /// Bytes already handed out.
    pos: u64,
    /// Armed bit offset into the stream.
    bit: u64,
}

impl<R: Read> Read for BitFlip<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        let byte = self.bit / 8;
        if byte >= self.pos && byte < self.pos + n as u64 {
            buf[(byte - self.pos) as usize] ^= 1 << (self.bit % 8);
        }
        self.pos += n as u64;
        Ok(n)
    }
}

/// Reads a complete binary trace from `r`.
///
/// The whole stream must belong to the trace: bytes beyond the declared
/// record count are rejected as corruption rather than silently ignored,
/// so a truncated header count (or a file with junk appended) cannot
/// masquerade as a clean shorter trace.
///
/// # Errors
///
/// Returns [`TraceFileError::BadMagic`] /
/// [`TraceFileError::UnsupportedVersion`] for malformed headers,
/// [`TraceFileError::Corrupt`] (carrying the offending record index) for
/// invalid records or trailing bytes, and [`TraceFileError::Io`] on
/// underlying read failures (including truncation).
pub fn read<R: Read>(r: R) -> Result<Vec<Inst>, TraceFileError> {
    match mlp_faults::param(mlp_faults::TRACE_BITFLIP) {
        Some(bit) => read_inner(BitFlip {
            inner: r,
            pos: 0,
            bit,
        }),
        None => read_inner(r),
    }
}

fn read_inner<R: Read>(mut r: R) -> Result<Vec<Inst>, TraceFileError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(TraceFileError::BadMagic(magic));
    }
    let mut h = [0u8; 4];
    r.read_exact(&mut h)?;
    let version = u16::from_le_bytes([h[0], h[1]]);
    if version != VERSION {
        return Err(TraceFileError::UnsupportedVersion(version));
    }
    let mut cnt = [0u8; 8];
    r.read_exact(&mut cnt)?;
    let count = u64::from_le_bytes(cnt);
    let corrupt = |what, record| TraceFileError::Corrupt { what, record };
    let mut insts = Vec::with_capacity(count.min(MAX_PREALLOC_RECORDS) as usize);
    let mut rec = [0u8; RECORD_BYTES];
    for record in 0..count {
        r.read_exact(&mut rec)?;
        let le64 = |o: usize| u64::from_le_bytes(rec[o..o + 8].try_into().expect("8 bytes"));
        let kind = code_kind(rec[32]).map_err(|what| corrupt(what, record))?;
        let flags = rec[38];
        let mem = if flags & 1 != 0 {
            Some(MemAccess {
                addr: le64(16),
                size: rec[37],
            })
        } else {
            None
        };
        let branch = if flags & 2 != 0 {
            let bkind = match kind {
                OpKind::Branch(k) => k,
                _ => return Err(corrupt("branch info on non-branch", record)),
            };
            Some(BranchInfo {
                kind: bkind,
                taken: flags & 4 != 0,
                target: le64(24),
            })
        } else {
            None
        };
        let reg = |b| decode_reg(b).map_err(|what| corrupt(what, record));
        insts.push(Inst {
            pc: le64(0),
            kind,
            srcs: [reg(rec[33])?, reg(rec[34])?, reg(rec[35])?],
            dst: reg(rec[36])?,
            mem,
            branch,
            value: le64(8),
        });
    }
    // The declared count must account for the whole stream.
    let mut probe = [0u8; 1];
    loop {
        match r.read(&mut probe) {
            Ok(0) => return Ok(insts),
            Ok(_) => {
                return Err(corrupt(
                    "trailing bytes after the declared record count",
                    count,
                ))
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(TraceFileError::Io(e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Inst> {
        vec![
            Inst::alu(0x100, &[Reg::int(1), Reg::int(2)], Reg::int(3)),
            Inst::load(0x104, Reg::int(3), 16, Reg::int(4), 0x8000).with_value(99),
            Inst::store(0x108, Reg::int(1), 0, Reg::int(4), 0x9008),
            Inst::prefetch(0x10c, Reg::int(3), 0xa000),
            Inst::cond_branch(0x110, Reg::int(4), true, 0x100),
            Inst::call(0x114, 0x4000),
            Inst::ret(0x4000, 0x118),
            Inst::membar(0x118),
            Inst::casa(
                0x11c,
                Reg::int(1),
                Reg::int(2),
                Reg::int(3),
                Reg::int(4),
                0xb000,
            ),
            Inst::nop(0x120),
        ]
    }

    #[test]
    fn round_trip_preserves_everything() {
        let trace = sample();
        let mut buf = Vec::new();
        write(&mut buf, &trace).unwrap();
        let back = read(buf.as_slice()).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn empty_trace_round_trips() {
        let mut buf = Vec::new();
        write(&mut buf, &[]).unwrap();
        assert_eq!(read(buf.as_slice()).unwrap(), vec![]);
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = b"NOPE\x01\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00".to_vec();
        assert!(matches!(
            read(buf.as_slice()),
            Err(TraceFileError::BadMagic(_))
        ));
    }

    #[test]
    fn bad_version_rejected() {
        let mut buf = Vec::new();
        write(&mut buf, &[]).unwrap();
        buf[4] = 0x7f; // corrupt version
        assert!(matches!(
            read(buf.as_slice()),
            Err(TraceFileError::UnsupportedVersion(_))
        ));
    }

    #[test]
    fn truncation_is_io_error() {
        let mut buf = Vec::new();
        write(&mut buf, &sample()).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(matches!(read(buf.as_slice()), Err(TraceFileError::Io(_))));
    }

    #[test]
    fn corrupt_kind_rejected_with_record_index() {
        let mut buf = Vec::new();
        write(&mut buf, &[Inst::nop(0), Inst::nop(4)]).unwrap();
        // Kind byte of the *second* record (header is 16 bytes).
        buf[16 + RECORD_BYTES + 32] = 0xee;
        assert!(matches!(
            read(buf.as_slice()),
            Err(TraceFileError::Corrupt { record: 1, .. })
        ));
    }

    #[test]
    fn corrupt_register_rejected_with_record_index() {
        let mut buf = Vec::new();
        write(&mut buf, &[Inst::alu(0, &[Reg::int(1)], Reg::int(2))]).unwrap();
        buf[16 + 33] = 200; // first source register
        assert!(matches!(
            read(buf.as_slice()),
            Err(TraceFileError::Corrupt { record: 0, .. })
        ));
    }

    #[test]
    fn trailing_garbage_rejected() {
        let trace = sample();
        let mut buf = Vec::new();
        write(&mut buf, &trace).unwrap();
        buf.push(0x5a);
        match read(buf.as_slice()) {
            Err(TraceFileError::Corrupt { what, record }) => {
                assert!(what.contains("trailing"));
                assert_eq!(record, trace.len() as u64);
            }
            other => panic!("expected trailing-garbage corruption, got {other:?}"),
        }
    }

    #[test]
    fn huge_declared_count_fails_without_overallocating() {
        // Header claiming u64::MAX records over an empty body: must fail
        // on the first record read, not reserve memory for the claim.
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&0u16.to_le_bytes());
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(read(buf.as_slice()), Err(TraceFileError::Io(_))));
    }

    #[test]
    fn error_display_is_informative() {
        let e = TraceFileError::UnsupportedVersion(9);
        assert!(format!("{e}").contains('9'));
        let e = TraceFileError::Corrupt {
            what: "whatever",
            record: 17,
        };
        let msg = format!("{e}");
        assert!(msg.contains("whatever") && msg.contains("17"));
    }
}
