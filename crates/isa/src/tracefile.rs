//! Compact binary trace format.
//!
//! Traces are usually generated on the fly, but persisting them is useful
//! for cross-simulator determinism checks and for sharing workloads. The
//! format is a little-endian stream of fixed-size records behind a small
//! header; it favours simplicity and robust validation over density.
//!
//! Layout:
//!
//! ```text
//! header:  magic "MLPT" | version u16 | reserved u16 | count u64
//! record:  pc u64 | value u64 | mem_addr u64 | br_target u64 |
//!          kind u8 | srcs [u8;3] | dst u8 | mem_size u8 | flags u8 | pad u8
//! ```
//!
//! `0xff` encodes an absent register slot. Flags: bit0 = has-mem,
//! bit1 = has-branch, bit2 = branch-taken.
//!
//! # Examples
//!
//! ```
//! use mlp_isa::{tracefile, Inst, Reg};
//!
//! let trace = vec![Inst::load(0x100, Reg::int(1), 0, Reg::int(2), 0x8000)];
//! let mut buf = Vec::new();
//! tracefile::write(&mut buf, &trace)?;
//! let back = tracefile::read(&mut buf.as_slice())?;
//! assert_eq!(back, trace);
//! # Ok::<(), tracefile::TraceFileError>(())
//! ```

use crate::{BranchInfo, BranchKind, Inst, MemAccess, OpKind, Reg};
use std::error::Error;
use std::fmt;
use std::io::{self, Read, Write};

const MAGIC: [u8; 4] = *b"MLPT";
const VERSION: u16 = 1;
const NO_REG: u8 = 0xff;
const RECORD_BYTES: usize = 40;

/// Error produced when reading or writing a binary trace.
#[derive(Debug)]
pub enum TraceFileError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream does not start with the `MLPT` magic.
    BadMagic([u8; 4]),
    /// The format version is not supported by this library.
    UnsupportedVersion(u16),
    /// A record contained an invalid field (bad kind, register, flag).
    Corrupt(&'static str),
}

impl fmt::Display for TraceFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceFileError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceFileError::BadMagic(m) => write!(f, "bad trace magic {m:02x?}"),
            TraceFileError::UnsupportedVersion(v) => {
                write!(f, "unsupported trace version {v}")
            }
            TraceFileError::Corrupt(what) => write!(f, "corrupt trace record: {what}"),
        }
    }
}

impl Error for TraceFileError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceFileError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceFileError {
    fn from(e: io::Error) -> TraceFileError {
        TraceFileError::Io(e)
    }
}

fn kind_code(kind: OpKind) -> u8 {
    match kind {
        OpKind::Alu => 0,
        OpKind::Load => 1,
        OpKind::Store => 2,
        OpKind::Prefetch => 3,
        OpKind::Branch(BranchKind::Conditional) => 4,
        OpKind::Branch(BranchKind::Call) => 5,
        OpKind::Branch(BranchKind::Return) => 6,
        OpKind::Branch(BranchKind::Indirect) => 7,
        OpKind::Membar => 8,
        OpKind::Atomic => 9,
        OpKind::Nop => 10,
    }
}

fn code_kind(code: u8) -> Result<OpKind, TraceFileError> {
    Ok(match code {
        0 => OpKind::Alu,
        1 => OpKind::Load,
        2 => OpKind::Store,
        3 => OpKind::Prefetch,
        4 => OpKind::Branch(BranchKind::Conditional),
        5 => OpKind::Branch(BranchKind::Call),
        6 => OpKind::Branch(BranchKind::Return),
        7 => OpKind::Branch(BranchKind::Indirect),
        8 => OpKind::Membar,
        9 => OpKind::Atomic,
        10 => OpKind::Nop,
        _ => return Err(TraceFileError::Corrupt("unknown instruction kind")),
    })
}

/// Writes `insts` as a binary trace to `w`.
///
/// A `&mut` writer can be passed since `Write` is implemented for mutable
/// references.
///
/// # Errors
///
/// Returns [`TraceFileError::Io`] on any underlying write failure.
pub fn write<W: Write>(mut w: W, insts: &[Inst]) -> Result<(), TraceFileError> {
    w.write_all(&MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&0u16.to_le_bytes())?;
    w.write_all(&(insts.len() as u64).to_le_bytes())?;
    let mut rec = [0u8; RECORD_BYTES];
    for i in insts {
        rec[0..8].copy_from_slice(&i.pc.to_le_bytes());
        rec[8..16].copy_from_slice(&i.value.to_le_bytes());
        let (maddr, msize, mflag) = match i.mem {
            Some(m) => (m.addr, m.size, 1u8),
            None => (0, 0, 0),
        };
        rec[16..24].copy_from_slice(&maddr.to_le_bytes());
        let (btgt, bflags) = match i.branch {
            Some(b) => (b.target, 2u8 | if b.taken { 4 } else { 0 }),
            None => (0, 0),
        };
        rec[24..32].copy_from_slice(&btgt.to_le_bytes());
        rec[32] = kind_code(i.kind);
        for (k, slot) in i.srcs.iter().enumerate() {
            rec[33 + k] = slot.map(|r| r.index() as u8).unwrap_or(NO_REG);
        }
        rec[36] = i.dst.map(|r| r.index() as u8).unwrap_or(NO_REG);
        rec[37] = msize;
        rec[38] = mflag | bflags;
        rec[39] = 0;
        w.write_all(&rec)?;
    }
    Ok(())
}

fn decode_reg(b: u8) -> Result<Option<Reg>, TraceFileError> {
    if b == NO_REG {
        Ok(None)
    } else if (b as usize) < Reg::COUNT {
        Ok(Some(Reg::int(b)))
    } else {
        Err(TraceFileError::Corrupt("register index out of range"))
    }
}

/// Reads a complete binary trace from `r`.
///
/// # Errors
///
/// Returns [`TraceFileError::BadMagic`] /
/// [`TraceFileError::UnsupportedVersion`] for malformed headers,
/// [`TraceFileError::Corrupt`] for invalid records, and
/// [`TraceFileError::Io`] on underlying read failures (including
/// truncation).
pub fn read<R: Read>(mut r: R) -> Result<Vec<Inst>, TraceFileError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(TraceFileError::BadMagic(magic));
    }
    let mut h = [0u8; 4];
    r.read_exact(&mut h)?;
    let version = u16::from_le_bytes([h[0], h[1]]);
    if version != VERSION {
        return Err(TraceFileError::UnsupportedVersion(version));
    }
    let mut cnt = [0u8; 8];
    r.read_exact(&mut cnt)?;
    let count = u64::from_le_bytes(cnt);
    let mut insts = Vec::with_capacity(count.min(1 << 24) as usize);
    let mut rec = [0u8; RECORD_BYTES];
    for _ in 0..count {
        r.read_exact(&mut rec)?;
        let le64 = |o: usize| u64::from_le_bytes(rec[o..o + 8].try_into().expect("8 bytes"));
        let kind = code_kind(rec[32])?;
        let flags = rec[38];
        let mem = if flags & 1 != 0 {
            Some(MemAccess {
                addr: le64(16),
                size: rec[37],
            })
        } else {
            None
        };
        let branch = if flags & 2 != 0 {
            let bkind = match kind {
                OpKind::Branch(k) => k,
                _ => return Err(TraceFileError::Corrupt("branch info on non-branch")),
            };
            Some(BranchInfo {
                kind: bkind,
                taken: flags & 4 != 0,
                target: le64(24),
            })
        } else {
            None
        };
        insts.push(Inst {
            pc: le64(0),
            kind,
            srcs: [
                decode_reg(rec[33])?,
                decode_reg(rec[34])?,
                decode_reg(rec[35])?,
            ],
            dst: decode_reg(rec[36])?,
            mem,
            branch,
            value: le64(8),
        });
    }
    Ok(insts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Inst> {
        vec![
            Inst::alu(0x100, &[Reg::int(1), Reg::int(2)], Reg::int(3)),
            Inst::load(0x104, Reg::int(3), 16, Reg::int(4), 0x8000).with_value(99),
            Inst::store(0x108, Reg::int(1), 0, Reg::int(4), 0x9008),
            Inst::prefetch(0x10c, Reg::int(3), 0xa000),
            Inst::cond_branch(0x110, Reg::int(4), true, 0x100),
            Inst::call(0x114, 0x4000),
            Inst::ret(0x4000, 0x118),
            Inst::membar(0x118),
            Inst::casa(
                0x11c,
                Reg::int(1),
                Reg::int(2),
                Reg::int(3),
                Reg::int(4),
                0xb000,
            ),
            Inst::nop(0x120),
        ]
    }

    #[test]
    fn round_trip_preserves_everything() {
        let trace = sample();
        let mut buf = Vec::new();
        write(&mut buf, &trace).unwrap();
        let back = read(buf.as_slice()).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn empty_trace_round_trips() {
        let mut buf = Vec::new();
        write(&mut buf, &[]).unwrap();
        assert_eq!(read(buf.as_slice()).unwrap(), vec![]);
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = b"NOPE\x01\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00".to_vec();
        assert!(matches!(
            read(buf.as_slice()),
            Err(TraceFileError::BadMagic(_))
        ));
    }

    #[test]
    fn bad_version_rejected() {
        let mut buf = Vec::new();
        write(&mut buf, &[]).unwrap();
        buf[4] = 0x7f; // corrupt version
        assert!(matches!(
            read(buf.as_slice()),
            Err(TraceFileError::UnsupportedVersion(_))
        ));
    }

    #[test]
    fn truncation_is_io_error() {
        let mut buf = Vec::new();
        write(&mut buf, &sample()).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(matches!(read(buf.as_slice()), Err(TraceFileError::Io(_))));
    }

    #[test]
    fn corrupt_kind_rejected() {
        let mut buf = Vec::new();
        write(&mut buf, &[Inst::nop(0)]).unwrap();
        buf[16 + 32] = 0xee; // kind byte of first record (header is 16 bytes)
        assert!(matches!(
            read(buf.as_slice()),
            Err(TraceFileError::Corrupt(_))
        ));
    }

    #[test]
    fn corrupt_register_rejected() {
        let mut buf = Vec::new();
        write(&mut buf, &[Inst::alu(0, &[Reg::int(1)], Reg::int(2))]).unwrap();
        buf[16 + 33] = 200; // first source register
        assert!(matches!(
            read(buf.as_slice()),
            Err(TraceFileError::Corrupt(_))
        ));
    }

    #[test]
    fn error_display_is_informative() {
        let e = TraceFileError::UnsupportedVersion(9);
        assert!(format!("{e}").contains('9'));
        let e = TraceFileError::Corrupt("whatever");
        assert!(format!("{e}").contains("whatever"));
    }
}
