use crate::{line_of, BranchKind, OpKind, Reg};
use std::fmt;

/// A data-memory access performed by an instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MemAccess {
    /// Effective (virtual) byte address of the access.
    pub addr: u64,
    /// Access size in bytes (1, 2, 4 or 8; prefetches use the line size).
    pub size: u8,
}

impl MemAccess {
    /// The cache-line address this access falls in.
    #[inline]
    pub fn line(&self) -> u64 {
        line_of(self.addr)
    }
}

/// The architectural outcome of a control-transfer instruction.
///
/// Traces record what the branch *actually did*; whether the front end
/// predicted it correctly is decided by the predictor models at simulation
/// time.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BranchInfo {
    /// The kind of control transfer.
    pub kind: BranchKind,
    /// Whether the branch was taken.
    pub taken: bool,
    /// The target address if taken (fall-through otherwise).
    pub target: u64,
}

/// One record of the dynamic instruction stream.
///
/// `Inst` is a passive trace record in the C-struct spirit: all fields are
/// public. Use the class-specific constructors ([`Inst::alu`],
/// [`Inst::load`], ...) for common cases and [`InstBuilder`] when full
/// control is needed.
///
/// # Examples
///
/// ```
/// use mlp_isa::{Inst, OpKind, Reg};
///
/// // load [r1 + 8] -> r2, loading the value 7
/// let ld = Inst::load(0x4000, Reg::int(1), 8, Reg::int(2), 0x9000).with_value(7);
/// assert_eq!(ld.kind, OpKind::Load);
/// assert_eq!(ld.mem.unwrap().addr, 0x9008);
/// assert_eq!(ld.value, 7);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Inst {
    /// Program counter of the instruction.
    pub pc: u64,
    /// Instruction class.
    pub kind: OpKind,
    /// Source registers (dependence inputs). Unused slots hold `None`.
    pub srcs: [Option<Reg>; 3],
    /// Destination register, if the instruction produces a value.
    pub dst: Option<Reg>,
    /// Data-memory access, if any.
    pub mem: Option<MemAccess>,
    /// Branch outcome, for control transfers.
    pub branch: Option<BranchInfo>,
    /// The value produced (for loads: the loaded value). Drives the value
    /// predictor models; ignored elsewhere.
    pub value: u64,
}

impl Inst {
    /// Creates an ALU instruction `op srcs -> dst`.
    pub fn alu(pc: u64, srcs: &[Reg], dst: Reg) -> Inst {
        let mut s = [None; 3];
        for (slot, &r) in s.iter_mut().zip(srcs.iter()) {
            *slot = Some(r);
        }
        Inst {
            pc,
            kind: OpKind::Alu,
            srcs: s,
            dst: Some(dst),
            mem: None,
            branch: None,
            value: 0,
        }
    }

    /// Creates a load `load [base + offset] -> dst` with effective address
    /// `addr` (the trace records the resolved address; `base` is kept only
    /// as the dependence input).
    pub fn load(pc: u64, base: Reg, offset: i64, dst: Reg, addr_base: u64) -> Inst {
        let addr = addr_base.wrapping_add_signed(offset);
        Inst {
            pc,
            kind: OpKind::Load,
            srcs: [Some(base), None, None],
            dst: Some(dst),
            mem: Some(MemAccess { addr, size: 8 }),
            branch: None,
            value: 0,
        }
    }

    /// Creates a store `store src -> [base + offset]`.
    pub fn store(pc: u64, base: Reg, offset: i64, src: Reg, addr_base: u64) -> Inst {
        let addr = addr_base.wrapping_add_signed(offset);
        Inst {
            pc,
            kind: OpKind::Store,
            srcs: [Some(base), Some(src), None],
            dst: None,
            mem: Some(MemAccess { addr, size: 8 }),
            branch: None,
            value: 0,
        }
    }

    /// Creates a software prefetch of the line containing `addr`.
    pub fn prefetch(pc: u64, base: Reg, addr: u64) -> Inst {
        Inst {
            pc,
            kind: OpKind::Prefetch,
            srcs: [Some(base), None, None],
            dst: None,
            mem: Some(MemAccess {
                addr,
                size: crate::LINE_BYTES as u8,
            }),
            branch: None,
            value: 0,
        }
    }

    /// Creates a conditional branch on `cond`, with outcome `taken` and
    /// taken-target `target`.
    pub fn cond_branch(pc: u64, cond: Reg, taken: bool, target: u64) -> Inst {
        Inst {
            pc,
            kind: OpKind::Branch(BranchKind::Conditional),
            srcs: [Some(cond), None, None],
            dst: None,
            mem: None,
            branch: Some(BranchInfo {
                kind: BranchKind::Conditional,
                taken,
                target,
            }),
            value: 0,
        }
    }

    /// Creates an unconditional call to `target`.
    pub fn call(pc: u64, target: u64) -> Inst {
        Inst {
            pc,
            kind: OpKind::Branch(BranchKind::Call),
            srcs: [None; 3],
            dst: None,
            mem: None,
            branch: Some(BranchInfo {
                kind: BranchKind::Call,
                taken: true,
                target,
            }),
            value: 0,
        }
    }

    /// Creates a return to `target`.
    pub fn ret(pc: u64, target: u64) -> Inst {
        Inst {
            pc,
            kind: OpKind::Branch(BranchKind::Return),
            srcs: [None; 3],
            dst: None,
            mem: None,
            branch: Some(BranchInfo {
                kind: BranchKind::Return,
                taken: true,
                target,
            }),
            value: 0,
        }
    }

    /// Creates an indirect jump through `base` to `target`.
    pub fn indirect(pc: u64, base: Reg, target: u64) -> Inst {
        Inst {
            pc,
            kind: OpKind::Branch(BranchKind::Indirect),
            srcs: [Some(base), None, None],
            dst: None,
            mem: None,
            branch: Some(BranchInfo {
                kind: BranchKind::Indirect,
                taken: true,
                target,
            }),
            value: 0,
        }
    }

    /// Creates a memory barrier (`MEMBAR`) — serializing, no memory access.
    pub fn membar(pc: u64) -> Inst {
        Inst {
            pc,
            kind: OpKind::Membar,
            srcs: [None; 3],
            dst: None,
            mem: None,
            branch: None,
            value: 0,
        }
    }

    /// Creates an atomic compare-and-swap (`CASA`) on `[base]`, comparing
    /// with `cmp` and swapping `swap`, old value into `dst`.
    pub fn casa(pc: u64, base: Reg, cmp: Reg, swap: Reg, dst: Reg, addr: u64) -> Inst {
        Inst {
            pc,
            kind: OpKind::Atomic,
            srcs: [Some(base), Some(cmp), Some(swap)],
            dst: Some(dst),
            mem: Some(MemAccess { addr, size: 8 }),
            branch: None,
            value: 0,
        }
    }

    /// Creates a no-operation.
    pub fn nop(pc: u64) -> Inst {
        Inst {
            pc,
            kind: OpKind::Nop,
            srcs: [None; 3],
            dst: None,
            mem: None,
            branch: None,
            value: 0,
        }
    }

    /// Returns the instruction with its produced/loaded value set.
    #[must_use]
    pub fn with_value(mut self, value: u64) -> Inst {
        self.value = value;
        self
    }

    /// Whether this is a load (including the load half of an atomic).
    #[inline]
    pub fn is_load(&self) -> bool {
        matches!(self.kind, OpKind::Load | OpKind::Atomic)
    }

    /// Whether this is a store (including the store half of an atomic).
    #[inline]
    pub fn is_store(&self) -> bool {
        matches!(self.kind, OpKind::Store | OpKind::Atomic)
    }

    /// Whether this is a control transfer.
    #[inline]
    pub fn is_branch(&self) -> bool {
        self.kind.is_branch()
    }

    /// Whether this is a serializing instruction.
    #[inline]
    pub fn is_serializing(&self) -> bool {
        self.kind.is_serializing()
    }

    /// Iterates over the source registers that carry real dependences
    /// (skipping empty slots and the zero register).
    pub fn dep_srcs(&self) -> impl Iterator<Item = Reg> + '_ {
        self.srcs.iter().filter_map(|s| *s).filter(|r| !r.is_zero())
    }

    /// The destination register, unless it is the zero register (writes to
    /// `r0` are discarded and carry no dependence).
    #[inline]
    pub fn dep_dst(&self) -> Option<Reg> {
        self.dst.filter(|r| !r.is_zero())
    }

    /// The cache line read by this instruction, if it reads memory.
    #[inline]
    pub fn read_line(&self) -> Option<u64> {
        if self.kind.reads_memory() {
            self.mem.map(|m| m.line())
        } else {
            None
        }
    }

    /// The cache line written by this instruction, if it writes memory.
    #[inline]
    pub fn write_line(&self) -> Option<u64> {
        if self.kind.writes_memory() {
            self.mem.map(|m| m.line())
        } else {
            None
        }
    }

    /// The address of the next instruction in the dynamic stream
    /// (branch target if taken, fall-through otherwise).
    #[inline]
    pub fn next_pc(&self) -> u64 {
        match self.branch {
            Some(b) if b.taken => b.target,
            _ => self.pc.wrapping_add(4),
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#010x}: {}", self.pc, self.kind)?;
        if let Some(m) = self.mem {
            write!(f, " [{:#x}]", m.addr)?;
        }
        if let Some(b) = self.branch {
            write!(f, " {}-> {:#x}", if b.taken { "T" } else { "N" }, b.target)?;
        }
        if let Some(d) = self.dst {
            write!(f, " -> {d}")?;
        }
        Ok(())
    }
}

/// Incremental builder for [`Inst`] records, for cases the class-specific
/// constructors do not cover (extra sources, custom access sizes, ...).
///
/// # Examples
///
/// ```
/// use mlp_isa::{InstBuilder, OpKind, Reg};
///
/// let inst = InstBuilder::new(0x100, OpKind::Load)
///     .src(Reg::int(1))
///     .src(Reg::int(2))
///     .dst(Reg::int(3))
///     .mem(0x8000, 4)
///     .value(42)
///     .build();
/// assert_eq!(inst.srcs[1], Some(Reg::int(2)));
/// assert_eq!(inst.mem.unwrap().size, 4);
/// ```
#[derive(Clone, Debug)]
pub struct InstBuilder {
    inst: Inst,
    nsrc: usize,
}

impl InstBuilder {
    /// Starts building an instruction of class `kind` at `pc`.
    pub fn new(pc: u64, kind: OpKind) -> InstBuilder {
        InstBuilder {
            inst: Inst {
                pc,
                kind,
                srcs: [None; 3],
                dst: None,
                mem: None,
                branch: None,
                value: 0,
            },
            nsrc: 0,
        }
    }

    /// Appends a source register.
    ///
    /// # Panics
    ///
    /// Panics if more than three sources are added.
    #[must_use]
    pub fn src(mut self, r: Reg) -> InstBuilder {
        assert!(self.nsrc < 3, "at most 3 source registers");
        self.inst.srcs[self.nsrc] = Some(r);
        self.nsrc += 1;
        self
    }

    /// Sets the destination register.
    #[must_use]
    pub fn dst(mut self, r: Reg) -> InstBuilder {
        self.inst.dst = Some(r);
        self
    }

    /// Sets the data-memory access.
    #[must_use]
    pub fn mem(mut self, addr: u64, size: u8) -> InstBuilder {
        self.inst.mem = Some(MemAccess { addr, size });
        self
    }

    /// Sets the branch outcome.
    #[must_use]
    pub fn branch(mut self, kind: BranchKind, taken: bool, target: u64) -> InstBuilder {
        self.inst.branch = Some(BranchInfo {
            kind,
            taken,
            target,
        });
        self
    }

    /// Sets the produced/loaded value.
    #[must_use]
    pub fn value(mut self, v: u64) -> InstBuilder {
        self.inst.value = v;
        self
    }

    /// Finishes and returns the instruction.
    pub fn build(self) -> Inst {
        self.inst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_effective_address() {
        let ld = Inst::load(0x100, Reg::int(1), 0x10, Reg::int(2), 0x8000);
        assert_eq!(ld.mem.unwrap().addr, 0x8010);
        assert_eq!(ld.read_line(), Some(0x8000));
        assert_eq!(ld.write_line(), None);
    }

    #[test]
    fn store_lines() {
        let st = Inst::store(0x100, Reg::int(1), 0, Reg::int(5), 0x8044);
        assert_eq!(st.write_line(), Some(0x8040));
        assert_eq!(st.read_line(), None);
    }

    #[test]
    fn atomic_reads_and_writes() {
        let a = Inst::casa(
            0x100,
            Reg::int(1),
            Reg::int(2),
            Reg::int(3),
            Reg::int(4),
            0x9000,
        );
        assert_eq!(a.read_line(), Some(0x9000));
        assert_eq!(a.write_line(), Some(0x9000));
        assert!(a.is_serializing());
        assert!(a.is_load());
        assert!(a.is_store());
    }

    #[test]
    fn zero_register_carries_no_dependence() {
        let i = Inst::alu(0x100, &[Reg::ZERO, Reg::int(3)], Reg::ZERO);
        assert_eq!(i.dep_srcs().count(), 1);
        assert_eq!(i.dep_dst(), None);
    }

    #[test]
    fn next_pc_follows_taken_branches() {
        let taken = Inst::cond_branch(0x100, Reg::int(1), true, 0x2000);
        let not_taken = Inst::cond_branch(0x100, Reg::int(1), false, 0x2000);
        assert_eq!(taken.next_pc(), 0x2000);
        assert_eq!(not_taken.next_pc(), 0x104);
        assert_eq!(Inst::nop(0x100).next_pc(), 0x104);
    }

    #[test]
    fn builder_full_round_trip() {
        let i = InstBuilder::new(0x10, OpKind::Store)
            .src(Reg::int(1))
            .src(Reg::int(2))
            .src(Reg::int(3))
            .mem(0xff8, 8)
            .build();
        assert_eq!(i.dep_srcs().count(), 3);
        assert_eq!(i.mem.unwrap().line(), 0xfc0);
    }

    #[test]
    #[should_panic(expected = "at most 3")]
    fn builder_rejects_fourth_source() {
        let _ = InstBuilder::new(0, OpKind::Alu)
            .src(Reg::int(1))
            .src(Reg::int(2))
            .src(Reg::int(3))
            .src(Reg::int(4));
    }

    #[test]
    fn display_is_nonempty() {
        let i = Inst::load(0x100, Reg::int(1), 0, Reg::int(2), 0x8000);
        let s = format!("{i}");
        assert!(s.contains("load"));
        assert!(s.contains("0x8000"));
    }

    #[test]
    fn membar_has_no_deps() {
        let m = Inst::membar(0x100);
        assert!(m.is_serializing());
        assert_eq!(m.dep_srcs().count(), 0);
        assert!(m.mem.is_none());
    }
}
