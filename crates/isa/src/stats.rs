use crate::{BranchKind, Inst, OpKind};
use std::fmt;

/// Dynamic instruction-mix counts for a trace.
///
/// # Examples
///
/// ```
/// use mlp_isa::{Inst, InstMix, Reg};
///
/// let mix: InstMix = [
///     Inst::alu(0, &[Reg::int(1)], Reg::int(2)),
///     Inst::load(4, Reg::int(2), 0, Reg::int(3), 0x8000),
///     Inst::membar(8),
/// ]
/// .iter()
/// .collect();
/// assert_eq!(mix.total, 3);
/// assert_eq!(mix.loads, 1);
/// assert_eq!(mix.serializing(), 1);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InstMix {
    /// Total instructions counted.
    pub total: u64,
    /// ALU instructions.
    pub alu: u64,
    /// Loads (not counting atomics).
    pub loads: u64,
    /// Stores (not counting atomics).
    pub stores: u64,
    /// Software prefetches.
    pub prefetches: u64,
    /// Conditional branches.
    pub cond_branches: u64,
    /// Calls, returns and indirect jumps.
    pub uncond_branches: u64,
    /// Memory barriers.
    pub membars: u64,
    /// Atomic read-modify-writes (CASA/LDSTUB).
    pub atomics: u64,
    /// No-operations.
    pub nops: u64,
}

impl InstMix {
    /// Creates an empty mix.
    pub fn new() -> InstMix {
        InstMix::default()
    }

    /// Accumulates one instruction.
    pub fn record(&mut self, inst: &Inst) {
        self.total += 1;
        match inst.kind {
            OpKind::Alu => self.alu += 1,
            OpKind::Load => self.loads += 1,
            OpKind::Store => self.stores += 1,
            OpKind::Prefetch => self.prefetches += 1,
            OpKind::Branch(BranchKind::Conditional) => self.cond_branches += 1,
            OpKind::Branch(_) => self.uncond_branches += 1,
            OpKind::Membar => self.membars += 1,
            OpKind::Atomic => self.atomics += 1,
            OpKind::Nop => self.nops += 1,
        }
    }

    /// Total serializing instructions (membars plus atomics).
    pub fn serializing(&self) -> u64 {
        self.membars + self.atomics
    }

    /// Total control transfers.
    pub fn branches(&self) -> u64 {
        self.cond_branches + self.uncond_branches
    }

    /// Fraction of the trace the given count represents (0 if the mix is
    /// empty).
    pub fn frac(&self, count: u64) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            count as f64 / self.total as f64
        }
    }
}

impl<'a> FromIterator<&'a Inst> for InstMix {
    fn from_iter<T: IntoIterator<Item = &'a Inst>>(iter: T) -> InstMix {
        let mut mix = InstMix::new();
        for i in iter {
            mix.record(i);
        }
        mix
    }
}

impl fmt::Display for InstMix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "instructions: {}", self.total)?;
        let pct = |c: u64| 100.0 * self.frac(c);
        writeln!(f, "  alu      {:>6.2}%", pct(self.alu))?;
        writeln!(f, "  load     {:>6.2}%", pct(self.loads))?;
        writeln!(f, "  store    {:>6.2}%", pct(self.stores))?;
        writeln!(f, "  prefetch {:>6.2}%", pct(self.prefetches))?;
        writeln!(f, "  branch   {:>6.2}%", pct(self.branches()))?;
        writeln!(f, "  serial   {:>6.2}%", pct(self.serializing()))?;
        write!(f, "  nop      {:>6.2}%", pct(self.nops))
    }
}

/// Aggregate statistics of a trace: instruction mix plus memory/branch
/// footprint summaries used when calibrating synthetic workloads.
#[derive(Clone, Debug, Default)]
pub struct TraceStats {
    /// Instruction mix counts.
    pub mix: InstMix,
    /// Distinct data cache lines touched.
    pub data_lines: u64,
    /// Distinct instruction cache lines touched.
    pub code_lines: u64,
    /// Taken conditional branches.
    pub taken_cond: u64,
}

impl TraceStats {
    /// Computes statistics over a finished trace.
    ///
    /// # Examples
    ///
    /// ```
    /// use mlp_isa::{Inst, Reg, TraceStats};
    ///
    /// let trace = vec![
    ///     Inst::load(0x100, Reg::int(1), 0, Reg::int(2), 0x8000),
    ///     Inst::load(0x104, Reg::int(1), 0, Reg::int(3), 0x8040),
    /// ];
    /// let stats = TraceStats::from_insts(&trace);
    /// assert_eq!(stats.data_lines, 2);
    /// assert_eq!(stats.code_lines, 1);
    /// ```
    pub fn from_insts(insts: &[Inst]) -> TraceStats {
        use std::collections::HashSet;
        let mut mix = InstMix::new();
        let mut data = HashSet::new();
        let mut code = HashSet::new();
        let mut taken = 0;
        for i in insts {
            mix.record(i);
            if let Some(m) = i.mem {
                data.insert(m.line());
            }
            code.insert(crate::line_of(i.pc));
            if i.kind == OpKind::Branch(BranchKind::Conditional)
                && i.branch.map(|b| b.taken).unwrap_or(false)
            {
                taken += 1;
            }
        }
        TraceStats {
            mix,
            data_lines: data.len() as u64,
            code_lines: code.len() as u64,
            taken_cond: taken,
        }
    }

    /// Data footprint in bytes (distinct lines × line size).
    pub fn data_footprint_bytes(&self) -> u64 {
        self.data_lines * crate::LINE_BYTES
    }

    /// Code footprint in bytes (distinct lines × line size).
    pub fn code_footprint_bytes(&self) -> u64 {
        self.code_lines * crate::LINE_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Reg;

    #[test]
    fn mix_counts_every_class() {
        let insts = vec![
            Inst::alu(0, &[Reg::int(1)], Reg::int(2)),
            Inst::load(4, Reg::int(1), 0, Reg::int(2), 0x8000),
            Inst::store(8, Reg::int(1), 0, Reg::int(2), 0x8000),
            Inst::prefetch(12, Reg::int(1), 0x9000),
            Inst::cond_branch(16, Reg::int(1), true, 0x100),
            Inst::call(20, 0x200),
            Inst::ret(24, 0x24),
            Inst::indirect(28, Reg::int(5), 0x300),
            Inst::membar(32),
            Inst::casa(
                36,
                Reg::int(1),
                Reg::int(2),
                Reg::int(3),
                Reg::int(4),
                0x8000,
            ),
            Inst::nop(40),
        ];
        let mix: InstMix = insts.iter().collect();
        assert_eq!(mix.total, 11);
        assert_eq!(mix.alu, 1);
        assert_eq!(mix.loads, 1);
        assert_eq!(mix.stores, 1);
        assert_eq!(mix.prefetches, 1);
        assert_eq!(mix.cond_branches, 1);
        assert_eq!(mix.uncond_branches, 3);
        assert_eq!(mix.membars, 1);
        assert_eq!(mix.atomics, 1);
        assert_eq!(mix.nops, 1);
        assert_eq!(mix.serializing(), 2);
        assert_eq!(mix.branches(), 4);
    }

    #[test]
    fn frac_of_empty_mix_is_zero() {
        let mix = InstMix::new();
        assert_eq!(mix.frac(10), 0.0);
    }

    #[test]
    fn stats_count_distinct_lines() {
        let insts = vec![
            Inst::load(0x100, Reg::int(1), 0, Reg::int(2), 0x8000),
            Inst::load(0x104, Reg::int(1), 8, Reg::int(3), 0x8000), // same line
            Inst::load(0x108, Reg::int(1), 0, Reg::int(4), 0x8040),
        ];
        let s = TraceStats::from_insts(&insts);
        assert_eq!(s.data_lines, 2);
        assert_eq!(s.data_footprint_bytes(), 128);
        assert_eq!(s.code_lines, 1);
        assert_eq!(s.code_footprint_bytes(), 64);
    }

    #[test]
    fn taken_branches_counted() {
        let insts = vec![
            Inst::cond_branch(0, Reg::int(1), true, 0x100),
            Inst::cond_branch(4, Reg::int(1), false, 0x100),
            Inst::call(8, 0x200), // unconditional: not counted as taken_cond
        ];
        let s = TraceStats::from_insts(&insts);
        assert_eq!(s.taken_cond, 1);
    }

    #[test]
    fn display_mentions_total() {
        let mix: InstMix = [Inst::nop(0)].iter().collect();
        assert!(format!("{mix}").contains("instructions: 1"));
    }
}
