//! Structure-of-arrays trace storage and the column-oriented instruction
//! sources the simulator kernels run over.
//!
//! The engines' hot loops touch a handful of narrow fields per
//! instruction — class, dependence registers, effective address — but an
//! array-of-structs `[Inst]` drags the full ~88-byte record through the
//! cache for every one of them. [`TraceSoA`] stores each field in its own
//! column so a pass over a trace streams only the bytes it reads, and
//! pre-derives what the kernels would otherwise recompute per
//! instruction:
//!
//! * a dense **class code** per instruction ([`class_of`]), so dispatch
//!   indexes a jump table instead of matching on a nested enum;
//! * **dependence columns** (`dep_srcs`/`dep_dst`) with the `None`/zero
//!   register filtering already applied, encoded with sentinels
//!   ([`DEP_READ_NONE`]/[`DEP_WRITE_NONE`]) so dependence tracking is
//!   three unconditional array reads and one unconditional write against
//!   a 66-slot availability file — no per-slot branching;
//! * a sparse **candidate index** of the instructions that read memory
//!   through an effective address (loads, atomics, prefetches) — exactly
//!   the instructions that can turn into useful off-chip accesses, so
//!   analysis passes can walk candidates instead of scanning every
//!   instruction.
//!
//! The encoding is lossless: [`TraceSoA::get`] reconstructs the original
//! [`Inst`] exactly, for any instruction the builder API can produce
//! (property-tested in `tests/soa_prop.rs`).

use crate::{BranchInfo, BranchKind, Inst, MemAccess, OpKind, Reg, TraceSource};

/// Number of distinct instruction class codes (one per [`OpKind`]
/// variant, with each branch flavour its own code).
pub const CLASS_COUNT: usize = 11;

/// Class code for [`OpKind::Alu`].
pub const CLASS_ALU: u8 = 0;
/// Class code for [`OpKind::Load`].
pub const CLASS_LOAD: u8 = 1;
/// Class code for [`OpKind::Store`].
pub const CLASS_STORE: u8 = 2;
/// Class code for [`OpKind::Prefetch`].
pub const CLASS_PREFETCH: u8 = 3;
/// Class code for [`OpKind::Branch`]`(`[`BranchKind::Conditional`]`)`.
pub const CLASS_BR_COND: u8 = 4;
/// Class code for [`OpKind::Branch`]`(`[`BranchKind::Call`]`)`.
pub const CLASS_BR_CALL: u8 = 5;
/// Class code for [`OpKind::Branch`]`(`[`BranchKind::Return`]`)`.
pub const CLASS_BR_RET: u8 = 6;
/// Class code for [`OpKind::Branch`]`(`[`BranchKind::Indirect`]`)`.
pub const CLASS_BR_IND: u8 = 7;
/// Class code for [`OpKind::Membar`].
pub const CLASS_MEMBAR: u8 = 8;
/// Class code for [`OpKind::Atomic`].
pub const CLASS_ATOMIC: u8 = 9;
/// Class code for [`OpKind::Nop`].
pub const CLASS_NOP: u8 = 10;

/// The dense class code of `kind`.
#[inline]
pub const fn class_of(kind: OpKind) -> u8 {
    match kind {
        OpKind::Alu => CLASS_ALU,
        OpKind::Load => CLASS_LOAD,
        OpKind::Store => CLASS_STORE,
        OpKind::Prefetch => CLASS_PREFETCH,
        OpKind::Branch(BranchKind::Conditional) => CLASS_BR_COND,
        OpKind::Branch(BranchKind::Call) => CLASS_BR_CALL,
        OpKind::Branch(BranchKind::Return) => CLASS_BR_RET,
        OpKind::Branch(BranchKind::Indirect) => CLASS_BR_IND,
        OpKind::Membar => CLASS_MEMBAR,
        OpKind::Atomic => CLASS_ATOMIC,
        OpKind::Nop => CLASS_NOP,
    }
}

/// The [`OpKind`] a class code stands for.
///
/// # Panics
///
/// Panics if `class >= CLASS_COUNT`.
#[inline]
pub const fn kind_of(class: u8) -> OpKind {
    match class {
        CLASS_ALU => OpKind::Alu,
        CLASS_LOAD => OpKind::Load,
        CLASS_STORE => OpKind::Store,
        CLASS_PREFETCH => OpKind::Prefetch,
        CLASS_BR_COND => OpKind::Branch(BranchKind::Conditional),
        CLASS_BR_CALL => OpKind::Branch(BranchKind::Call),
        CLASS_BR_RET => OpKind::Branch(BranchKind::Return),
        CLASS_BR_IND => OpKind::Branch(BranchKind::Indirect),
        CLASS_MEMBAR => OpKind::Membar,
        CLASS_ATOMIC => OpKind::Atomic,
        CLASS_NOP => OpKind::Nop,
        _ => panic!("invalid class code"),
    }
}

/// Attribute bit: the class reads memory through an effective address.
pub const ATTR_READS_MEM: u8 = 1 << 0;
/// Attribute bit: the class writes memory.
pub const ATTR_WRITES_MEM: u8 = 1 << 1;
/// Attribute bit: the class is serializing (`MEMBAR`/`CASA`).
pub const ATTR_SERIALIZING: u8 = 1 << 2;
/// Attribute bit: the class is a control transfer.
pub const ATTR_BRANCH: u8 = 1 << 3;

/// Per-class attribute bitmasks, indexed by class code — the table-driven
/// replacement for chains of `matches!` on [`OpKind`] in per-instruction
/// loops. Kept consistent with [`OpKind`]'s predicate methods by the
/// `class_attrs_match_opkind_predicates` test.
pub const CLASS_ATTRS: [u8; CLASS_COUNT] = {
    let mut t = [0u8; CLASS_COUNT];
    let mut c = 0;
    while c < CLASS_COUNT {
        let kind = kind_of(c as u8);
        let mut a = 0;
        if kind.reads_memory() {
            a |= ATTR_READS_MEM;
        }
        if kind.writes_memory() {
            a |= ATTR_WRITES_MEM;
        }
        if kind.is_serializing() {
            a |= ATTR_SERIALIZING;
        }
        if kind.is_branch() {
            a |= ATTR_BRANCH;
        }
        t[c] = a;
        c += 1;
    }
    t
};

/// Raw source/destination sentinel: the slot holds no register.
pub const REG_NONE: u8 = 0xFF;

/// Dependence-column sentinel for a read that carries no dependence
/// (an empty slot or the zero register). Index [`DEP_READ_NONE`] of a
/// 66-slot availability file is never written, so it always reads 0.
pub const DEP_READ_NONE: u8 = Reg::COUNT as u8; // 64

/// Dependence-column sentinel for a write that produces no dependence
/// (no destination, or the discarded zero register). Index
/// [`DEP_WRITE_NONE`] is a trash slot: written freely, never read.
pub const DEP_WRITE_NONE: u8 = Reg::COUNT as u8 + 1; // 65

/// Slots of the availability file the dependence columns index:
/// `Reg::COUNT` real registers plus the two sentinels.
pub const AVAIL_SLOTS: usize = Reg::COUNT + 2;

// `flags` column bits. `pub(crate)` so the chunked trace format can
// serialize the column raw and validate it on decode.
pub(crate) const FLAG_HAS_MEM: u8 = 1 << 0;
pub(crate) const FLAG_HAS_BRANCH: u8 = 1 << 1;
pub(crate) const FLAG_TAKEN: u8 = 1 << 2;
pub(crate) const FLAG_BKIND_SHIFT: u32 = 3; // bits 3-4: BranchKind code

pub(crate) const fn bkind_code(kind: BranchKind) -> u8 {
    match kind {
        BranchKind::Conditional => 0,
        BranchKind::Call => 1,
        BranchKind::Return => 2,
        BranchKind::Indirect => 3,
    }
}

pub(crate) const fn bkind_of(code: u8) -> BranchKind {
    match code & 3 {
        0 => BranchKind::Conditional,
        1 => BranchKind::Call,
        2 => BranchKind::Return,
        _ => BranchKind::Indirect,
    }
}

/// A structure-of-arrays trace: one column per [`Inst`] field, plus
/// derived dependence columns and the sparse off-chip-candidate index.
///
/// Push-only: columns and the candidate index grow in lockstep and
/// existing entries are never mutated, so a `TraceSoA` prefix is stable
/// under growth (the invariant `TraceStore` relies on for shared
/// materialization).
///
/// # Examples
///
/// ```
/// use mlp_isa::{Inst, Reg, TraceSoA};
///
/// let insts = [
///     Inst::alu(0x100, &[Reg::int(1)], Reg::int(2)),
///     Inst::load(0x104, Reg::int(2), 0, Reg::int(3), 0x8000),
/// ];
/// let soa = TraceSoA::from_insts(&insts);
/// assert_eq!(soa.get(0), insts[0]);
/// assert_eq!(soa.get(1), insts[1]);
/// assert_eq!(soa.candidates(), &[1]); // only the load reads memory
/// ```
#[derive(Clone, Debug, Default)]
pub struct TraceSoA {
    pc: Vec<u64>,
    class: Vec<u8>,
    flags: Vec<u8>,
    srcs: Vec<[u8; 3]>,
    dst: Vec<u8>,
    dep_srcs: Vec<[u8; 3]>,
    dep_dst: Vec<u8>,
    addr: Vec<u64>,
    asize: Vec<u8>,
    btarget: Vec<u64>,
    value: Vec<u64>,
    candidates: Vec<u32>,
}

impl TraceSoA {
    /// An empty trace.
    pub fn new() -> TraceSoA {
        TraceSoA::default()
    }

    /// An empty trace with room for `n` instructions.
    pub fn with_capacity(n: usize) -> TraceSoA {
        TraceSoA {
            pc: Vec::with_capacity(n),
            class: Vec::with_capacity(n),
            flags: Vec::with_capacity(n),
            srcs: Vec::with_capacity(n),
            dst: Vec::with_capacity(n),
            dep_srcs: Vec::with_capacity(n),
            dep_dst: Vec::with_capacity(n),
            addr: Vec::with_capacity(n),
            asize: Vec::with_capacity(n),
            btarget: Vec::with_capacity(n),
            value: Vec::with_capacity(n),
            candidates: Vec::new(),
        }
    }

    /// Builds the columns from a slice of trace records.
    pub fn from_insts(insts: &[Inst]) -> TraceSoA {
        let mut soa = TraceSoA::with_capacity(insts.len());
        soa.extend_from_slice(insts);
        soa
    }

    /// Appends every instruction of `insts`.
    pub fn extend_from_slice(&mut self, insts: &[Inst]) {
        for i in insts {
            self.push(i);
        }
    }

    /// Appends one instruction, deriving its dependence columns and (if
    /// it reads memory) its candidate-index entry.
    pub fn push(&mut self, inst: &Inst) {
        debug_assert!(self.pc.len() < u32::MAX as usize, "trace too long");
        let idx = self.pc.len() as u32;
        self.pc.push(inst.pc);
        let class = class_of(inst.kind);
        self.class.push(class);

        let mut flags = 0u8;
        let (addr, asize) = match inst.mem {
            Some(m) => {
                flags |= FLAG_HAS_MEM;
                (m.addr, m.size)
            }
            None => (0, 0),
        };
        let btarget = match inst.branch {
            Some(b) => {
                flags |= FLAG_HAS_BRANCH;
                if b.taken {
                    flags |= FLAG_TAKEN;
                }
                flags |= bkind_code(b.kind) << FLAG_BKIND_SHIFT;
                b.target
            }
            None => 0,
        };
        self.flags.push(flags);
        self.addr.push(addr);
        self.asize.push(asize);
        self.btarget.push(btarget);
        self.value.push(inst.value);

        let mut raw = [REG_NONE; 3];
        let mut dep = [DEP_READ_NONE; 3];
        let mut n = 0;
        for (slot, src) in raw.iter_mut().zip(inst.srcs.iter()) {
            if let Some(r) = src {
                *slot = r.index() as u8;
                if !r.is_zero() {
                    dep[n] = r.index() as u8;
                    n += 1;
                }
            }
        }
        self.srcs.push(raw);
        self.dep_srcs.push(dep);
        self.dst.push(match inst.dst {
            Some(r) => r.index() as u8,
            None => REG_NONE,
        });
        self.dep_dst.push(match inst.dst {
            Some(r) if !r.is_zero() => r.index() as u8,
            _ => DEP_WRITE_NONE,
        });

        if CLASS_ATTRS[class as usize] & ATTR_READS_MEM != 0 {
            self.candidates.push(idx);
        }
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.pc.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.pc.is_empty()
    }

    /// Reconstructs instruction `i` exactly as it was pushed.
    pub fn get(&self, i: usize) -> Inst {
        let flags = self.flags[i];
        Inst {
            pc: self.pc[i],
            kind: kind_of(self.class[i]),
            srcs: self.srcs[i].map(|r| {
                if r == REG_NONE {
                    None
                } else {
                    Some(Reg::int(r))
                }
            }),
            dst: match self.dst[i] {
                REG_NONE => None,
                r => Some(Reg::int(r)),
            },
            mem: (flags & FLAG_HAS_MEM != 0).then(|| MemAccess {
                addr: self.addr[i],
                size: self.asize[i],
            }),
            branch: (flags & FLAG_HAS_BRANCH != 0).then(|| BranchInfo {
                kind: bkind_of(flags >> FLAG_BKIND_SHIFT),
                taken: flags & FLAG_TAKEN != 0,
                target: self.btarget[i],
            }),
            value: self.value[i],
        }
    }

    /// The branch outcome of instruction `i`, if it carries one.
    #[inline]
    pub fn branch_info(&self, i: usize) -> Option<BranchInfo> {
        let flags = self.flags[i];
        (flags & FLAG_HAS_BRANCH != 0).then(|| BranchInfo {
            kind: bkind_of(flags >> FLAG_BKIND_SHIFT),
            taken: flags & FLAG_TAKEN != 0,
            target: self.btarget[i],
        })
    }

    /// Whether instruction `i` carries a data-memory access.
    #[inline]
    pub fn has_mem(&self, i: usize) -> bool {
        self.flags[i] & FLAG_HAS_MEM != 0
    }

    /// Program-counter column.
    #[inline]
    pub fn pc(&self) -> &[u64] {
        &self.pc
    }

    /// Raw flags column (crate-internal: the chunked trace format
    /// serializes it verbatim and validates it on decode).
    #[inline]
    pub(crate) fn flags_raw(&self) -> &[u8] {
        &self.flags
    }

    /// Class-code column (index [`CLASS_ATTRS`] with these).
    #[inline]
    pub fn class(&self) -> &[u8] {
        &self.class
    }

    /// Raw source-register column (slot order preserved; [`REG_NONE`]
    /// marks empty slots).
    #[inline]
    pub fn srcs_raw(&self) -> &[[u8; 3]] {
        &self.srcs
    }

    /// Raw destination-register column ([`REG_NONE`] = none).
    #[inline]
    pub fn dst_raw(&self) -> &[u8] {
        &self.dst
    }

    /// Dependence-filtered source columns: real dependences first, then
    /// [`DEP_READ_NONE`] padding.
    #[inline]
    pub fn dep_srcs(&self) -> &[[u8; 3]] {
        &self.dep_srcs
    }

    /// Dependence-filtered destination column ([`DEP_WRITE_NONE`] when
    /// the instruction produces no dependence).
    #[inline]
    pub fn dep_dst(&self) -> &[u8] {
        &self.dep_dst
    }

    /// Effective-address column (0 when the instruction has no access;
    /// check [`TraceSoA::has_mem`] or the class attributes).
    #[inline]
    pub fn addr(&self) -> &[u64] {
        &self.addr
    }

    /// Access-size column (0 when the instruction has no access).
    #[inline]
    pub fn asize(&self) -> &[u8] {
        &self.asize
    }

    /// Branch-target column (0 when the instruction has no branch info).
    #[inline]
    pub fn btarget(&self) -> &[u64] {
        &self.btarget
    }

    /// Produced/loaded-value column.
    #[inline]
    pub fn value(&self) -> &[u64] {
        &self.value
    }

    /// The sparse off-chip-candidate index: positions of every
    /// instruction whose class reads memory through an effective address
    /// (loads, atomics, software prefetches), in trace order.
    #[inline]
    pub fn candidates(&self) -> &[u32] {
        &self.candidates
    }

    /// Appends every instruction of `other`, re-basing its candidate
    /// index. Equivalent to pushing `other.get(i)` for each `i`, but
    /// copies the columns directly.
    pub fn append_from(&mut self, other: &TraceSoA) {
        let offset = self.pc.len() as u32;
        self.pc.extend_from_slice(&other.pc);
        self.class.extend_from_slice(&other.class);
        self.flags.extend_from_slice(&other.flags);
        self.srcs.extend_from_slice(&other.srcs);
        self.dst.extend_from_slice(&other.dst);
        self.dep_srcs.extend_from_slice(&other.dep_srcs);
        self.dep_dst.extend_from_slice(&other.dep_dst);
        self.addr.extend_from_slice(&other.addr);
        self.asize.extend_from_slice(&other.asize);
        self.btarget.extend_from_slice(&other.btarget);
        self.value.extend_from_slice(&other.value);
        self.candidates
            .extend(other.candidates.iter().map(|&c| c + offset));
    }

    /// Drops the first `n` instructions, shifting the rest (and the
    /// candidate index) down. Used by streaming sources to evict consumed
    /// prefixes and keep resident memory bounded by the read-ahead
    /// window, not the trace length.
    ///
    /// # Panics
    ///
    /// Panics if `n > self.len()`.
    pub fn drain_prefix(&mut self, n: usize) {
        assert!(n <= self.pc.len(), "drain beyond trace length");
        if n == 0 {
            return;
        }
        self.pc.drain(..n);
        self.class.drain(..n);
        self.flags.drain(..n);
        self.srcs.drain(..n);
        self.dst.drain(..n);
        self.dep_srcs.drain(..n);
        self.dep_dst.drain(..n);
        self.addr.drain(..n);
        self.asize.drain(..n);
        self.btarget.drain(..n);
        self.value.drain(..n);
        let keep = self.candidates.partition_point(|&c| (c as usize) < n);
        self.candidates.drain(..keep);
        for c in &mut self.candidates {
            *c -= n as u32;
        }
    }

    /// Approximate resident heap bytes of the columns (per-instruction
    /// column widths plus the sparse candidate index; allocator slack and
    /// unused capacity are not counted). Used for cache-budget
    /// accounting, not allocation.
    pub fn approx_bytes(&self) -> u64 {
        // pc 8 + class 1 + flags 1 + srcs 3 + dst 1 + dep_srcs 3 +
        // dep_dst 1 + addr 8 + asize 1 + btarget 8 + value 8 = 43.
        self.pc.len() as u64 * 43 + self.candidates.len() as u64 * 4
    }
}

/// A column source the simulator kernels run over: a [`TraceSoA`] plus a
/// way to make more instructions available ([`InstSource::ensure`]).
///
/// The two implementations — [`SharedSoaSource`] borrowing a pre-built
/// trace and [`StreamingSoaSource`] decoding from any [`TraceSource`] on
/// demand — let one engine body serve both the shared-materialized
/// experiment path and arbitrary streaming traces, so the fast path
/// cannot drift from the general one.
pub trait InstSource {
    /// Tries to make at least `upto` instructions available; returns how
    /// many actually are (less only when the trace ends first).
    fn ensure(&mut self, upto: usize) -> usize;

    /// Instructions currently available.
    fn available(&self) -> usize;

    /// The columns; slots `[base() - base(), available() - base())` are
    /// valid — i.e. absolute trace index `i` lives at column slot
    /// `i - base()`.
    fn soa(&self) -> &TraceSoA;

    /// Absolute trace index of `soa()` slot 0. Always 0 for materialized
    /// sources; a bounded-memory streaming source advances it as
    /// [`InstSource::release`] lets it evict consumed prefixes.
    ///
    /// May change across `ensure`/`release` calls, so engines must
    /// re-read it after either; it never moves past the lowest index not
    /// yet released.
    #[inline]
    fn base(&self) -> usize {
        0
    }

    /// Declares that indices below `before` will never be read again.
    /// Purely a hint: a materialized source ignores it, a streaming
    /// source may evict the released prefix to bound resident memory.
    #[inline]
    fn release(&mut self, _before: usize) {}
}

/// An [`InstSource`] over a pre-materialized [`TraceSoA`] (or a prefix of
/// one): `ensure` never decodes, it just caps at the prefix length.
pub struct SharedSoaSource<'a> {
    soa: &'a TraceSoA,
    len: usize,
}

impl<'a> SharedSoaSource<'a> {
    /// A source over the first `len` instructions of `soa`.
    ///
    /// # Panics
    ///
    /// Panics if `len > soa.len()`.
    pub fn new(soa: &'a TraceSoA, len: usize) -> SharedSoaSource<'a> {
        assert!(len <= soa.len(), "prefix exceeds materialized trace");
        SharedSoaSource { soa, len }
    }
}

impl InstSource for SharedSoaSource<'_> {
    #[inline]
    fn ensure(&mut self, _upto: usize) -> usize {
        self.len
    }

    #[inline]
    fn available(&self) -> usize {
        self.len
    }

    #[inline]
    fn soa(&self) -> &TraceSoA {
        self.soa
    }
}

/// An [`InstSource`] that decodes a streaming [`TraceSource`] into
/// columns on demand. The decoded prefix is kept for the lifetime of the
/// source (an engine run), trading memory proportional to the run length
/// for column access; experiment sweeps avoid even that by sharing one
/// materialized [`TraceSoA`] through [`SharedSoaSource`].
pub struct StreamingSoaSource<'a, T: TraceSource> {
    trace: &'a mut T,
    soa: TraceSoA,
    done: bool,
}

impl<'a, T: TraceSource> StreamingSoaSource<'a, T> {
    /// A source decoding from `trace`.
    pub fn new(trace: &'a mut T) -> StreamingSoaSource<'a, T> {
        StreamingSoaSource {
            trace,
            soa: TraceSoA::new(),
            done: false,
        }
    }
}

impl<T: TraceSource> InstSource for StreamingSoaSource<'_, T> {
    fn ensure(&mut self, upto: usize) -> usize {
        while !self.done && self.soa.len() < upto {
            match self.trace.next_inst() {
                Some(i) => self.soa.push(&i),
                None => self.done = true,
            }
        }
        self.soa.len()
    }

    #[inline]
    fn available(&self) -> usize {
        self.soa.len()
    }

    #[inline]
    fn soa(&self) -> &TraceSoA {
        &self.soa
    }
}

/// A supplier of column-oriented trace chunks, the streaming counterpart
/// of a materialized [`TraceSoA`]: each call yields the next run of
/// instructions (any non-zero length) until the trace ends.
///
/// Blanket-implemented for every `Iterator<Item = TraceSoA>`, so a
/// chunked trace file reader, a generator adapter, or a plain
/// `vec![soa].into_iter()` all drive the same engine entry points.
pub trait SoAChunks {
    /// The next chunk, or `None` when the trace is exhausted.
    fn next_chunk(&mut self) -> Option<TraceSoA>;
}

impl<I: Iterator<Item = TraceSoA>> SoAChunks for I {
    #[inline]
    fn next_chunk(&mut self) -> Option<TraceSoA> {
        self.next()
    }
}

/// Smallest released prefix worth compacting away. Draining costs a copy
/// of the retained suffix, so [`ChunkedSoaSource`] waits until the
/// consumed prefix is both non-trivial and at least half the buffer —
/// each drain then removes more instructions than it keeps, making the
/// copy cost amortized O(1) per instruction.
const DRAIN_MIN: usize = 1024;

/// An [`InstSource`] over a chunk stream that keeps only a sliding
/// window of columns resident.
///
/// Chunks are appended into one contiguous rolling [`TraceSoA`] (engines
/// index columns, so the window must be contiguous even when a
/// dependence or fetch-ahead range straddles a chunk boundary); prefixes
/// the engine has [`InstSource::release`]d are compacted away. Resident
/// memory is bounded by the engine's read-ahead span plus O(chunk), not
/// by the trace length.
pub struct ChunkedSoaSource<C: SoAChunks> {
    chunks: C,
    buf: TraceSoA,
    /// Absolute trace index of `buf` slot 0.
    base: usize,
    /// Absolute index below which the engine has released everything.
    released: usize,
    done: bool,
}

impl<C: SoAChunks> ChunkedSoaSource<C> {
    /// A source draining `chunks`.
    pub fn new(chunks: C) -> ChunkedSoaSource<C> {
        ChunkedSoaSource {
            chunks,
            buf: TraceSoA::new(),
            base: 0,
            released: 0,
            done: false,
        }
    }

    fn maybe_drain(&mut self) {
        let n = self.released.saturating_sub(self.base);
        if n >= DRAIN_MIN && n * 2 >= self.buf.len() {
            self.buf.drain_prefix(n);
            self.base += n;
        }
    }
}

impl<C: SoAChunks> InstSource for ChunkedSoaSource<C> {
    fn ensure(&mut self, upto: usize) -> usize {
        while !self.done && self.base + self.buf.len() < upto {
            match self.chunks.next_chunk() {
                Some(chunk) => {
                    self.buf.append_from(&chunk);
                    self.maybe_drain();
                }
                None => self.done = true,
            }
        }
        self.base + self.buf.len()
    }

    #[inline]
    fn available(&self) -> usize {
        self.base + self.buf.len()
    }

    #[inline]
    fn soa(&self) -> &TraceSoA {
        &self.buf
    }

    #[inline]
    fn base(&self) -> usize {
        self.base
    }

    fn release(&mut self, before: usize) {
        let before = before.min(self.base + self.buf.len());
        if before > self.released {
            self.released = before;
            self.maybe_drain();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InstBuilder;

    fn sample() -> Vec<Inst> {
        let r = Reg::int;
        vec![
            Inst::alu(0x100, &[r(1), r(2)], r(3)),
            Inst::load(0x104, r(3), 8, r(4), 0x8000).with_value(7),
            Inst::store(0x108, r(5), 0, r(4), 0x9000),
            Inst::prefetch(0x10c, r(3), 0xa000),
            Inst::cond_branch(0x110, r(4), true, 0x2000),
            Inst::call(0x114, 0x3000),
            Inst::ret(0x118, 0x118),
            Inst::indirect(0x11c, r(6), 0x4000),
            Inst::membar(0x120),
            Inst::casa(0x124, r(1), r(2), r(3), r(4), 0xb000),
            Inst::nop(0x128),
            // Oddballs: zero registers, builder-made corner cases.
            Inst::alu(0x12c, &[Reg::ZERO, r(9)], Reg::ZERO),
            InstBuilder::new(0x130, OpKind::Alu)
                .branch(BranchKind::Call, false, 0x5000)
                .build(),
        ]
    }

    #[test]
    fn round_trip_is_exact() {
        let insts = sample();
        let soa = TraceSoA::from_insts(&insts);
        assert_eq!(soa.len(), insts.len());
        for (i, inst) in insts.iter().enumerate() {
            assert_eq!(soa.get(i), *inst, "instruction {i}");
        }
    }

    #[test]
    fn candidates_are_memory_readers() {
        let insts = sample();
        let soa = TraceSoA::from_insts(&insts);
        let naive: Vec<u32> = insts
            .iter()
            .enumerate()
            .filter(|(_, i)| i.kind.reads_memory())
            .map(|(i, _)| i as u32)
            .collect();
        assert_eq!(soa.candidates(), naive.as_slice());
    }

    #[test]
    fn class_codes_round_trip() {
        for c in 0..CLASS_COUNT as u8 {
            assert_eq!(class_of(kind_of(c)), c);
        }
    }

    #[test]
    fn class_attrs_match_opkind_predicates() {
        for c in 0..CLASS_COUNT as u8 {
            let kind = kind_of(c);
            let a = CLASS_ATTRS[c as usize];
            assert_eq!(a & ATTR_READS_MEM != 0, kind.reads_memory());
            assert_eq!(a & ATTR_WRITES_MEM != 0, kind.writes_memory());
            assert_eq!(a & ATTR_SERIALIZING != 0, kind.is_serializing());
            assert_eq!(a & ATTR_BRANCH != 0, kind.is_branch());
        }
    }

    #[test]
    fn dep_columns_filter_zero_and_empty() {
        let soa = TraceSoA::from_insts(&[
            Inst::alu(0, &[Reg::ZERO, Reg::int(7)], Reg::ZERO),
            Inst::nop(4),
        ]);
        assert_eq!(soa.dep_srcs()[0], [7, DEP_READ_NONE, DEP_READ_NONE]);
        assert_eq!(soa.dep_dst()[0], DEP_WRITE_NONE);
        assert_eq!(soa.dep_srcs()[1], [DEP_READ_NONE; 3]);
        assert_eq!(soa.dep_dst()[1], DEP_WRITE_NONE);
        // Raw columns keep slot positions (and the zero register).
        assert_eq!(soa.srcs_raw()[0], [0, 7, REG_NONE]);
        assert_eq!(soa.dst_raw()[0], 0);
    }

    #[test]
    fn shared_source_caps_at_prefix() {
        let soa = TraceSoA::from_insts(&sample());
        let mut s = SharedSoaSource::new(&soa, 3);
        assert_eq!(s.ensure(100), 3);
        assert_eq!(s.available(), 3);
    }

    #[test]
    fn append_and_drain_preserve_contents() {
        let insts = sample();
        let mut soa = TraceSoA::from_insts(&insts[..4]);
        soa.append_from(&TraceSoA::from_insts(&insts[4..]));
        let whole = TraceSoA::from_insts(&insts);
        assert_eq!(soa.candidates(), whole.candidates());
        for (i, inst) in insts.iter().enumerate() {
            assert_eq!(soa.get(i), *inst, "after append, instruction {i}");
        }
        soa.drain_prefix(3);
        assert_eq!(soa.len(), insts.len() - 3);
        for (i, inst) in insts[3..].iter().enumerate() {
            assert_eq!(soa.get(i), *inst, "after drain, instruction {i}");
        }
        let naive: Vec<u32> = insts[3..]
            .iter()
            .enumerate()
            .filter(|(_, i)| i.kind.reads_memory())
            .map(|(i, _)| i as u32)
            .collect();
        assert_eq!(soa.candidates(), naive.as_slice());
        soa.drain_prefix(soa.len());
        assert!(soa.is_empty() && soa.candidates().is_empty());
    }

    #[test]
    fn chunked_source_streams_and_evicts() {
        // A long synthetic trace delivered in 256-inst chunks; release
        // everything behind the read point and check the window slides.
        let make = |i: usize| {
            Inst::load(
                0x1000 + 4 * i as u64,
                Reg::int(1),
                0,
                Reg::int(2),
                0x8000 + 64 * i as u64,
            )
        };
        let total = 10 * 1024;
        let chunks = (0..total / 256).map(move |c| {
            TraceSoA::from_insts(&(c * 256..(c + 1) * 256).map(make).collect::<Vec<_>>())
        });
        let mut src = ChunkedSoaSource::new(chunks);
        assert_eq!(src.available(), 0);
        for i in 0..total {
            assert!(src.ensure(i + 1) > i, "trace ended early at {i}");
            let slot = i - src.base();
            assert_eq!(src.soa().get(slot), make(i), "instruction {i}");
            src.release(i);
        }
        assert_eq!(src.ensure(total + 1), total);
        // The rolling buffer held a bounded window, not the whole trace.
        assert!(src.base() > 0, "prefix was never evicted");
        assert!(
            src.soa().len() < total / 2,
            "resident window {} not bounded",
            src.soa().len()
        );
    }

    #[test]
    fn streaming_source_decodes_on_demand() {
        let insts = sample();
        let mut trace = crate::SliceTrace::new(&insts);
        let mut s = StreamingSoaSource::new(&mut trace);
        assert_eq!(s.available(), 0);
        assert_eq!(s.ensure(2), 2);
        assert_eq!(s.ensure(1_000), insts.len());
        for (i, inst) in insts.iter().enumerate() {
            assert_eq!(s.soa().get(i), *inst);
        }
    }
}
