use std::fmt;

/// The flavour of a control-transfer instruction.
///
/// The distinction matters to the front-end predictors: conditional
/// branches consult the direction predictor (gshare), calls and returns
/// exercise the return-address stack, and indirect jumps rely purely on
/// the branch target buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BranchKind {
    /// A conditional direct branch (SPARC `Bicc`/`BPcc`).
    Conditional,
    /// An unconditional direct call (`CALL`); pushes a return address.
    Call,
    /// A return (`RETURN`/`JMPL` to the link register); pops the RAS.
    Return,
    /// An indirect jump through a register (`JMPL`), not a call/return.
    Indirect,
}

impl fmt::Display for BranchKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BranchKind::Conditional => "cond",
            BranchKind::Call => "call",
            BranchKind::Return => "ret",
            BranchKind::Indirect => "ind",
        };
        f.write_str(s)
    }
}

/// The class of a dynamic instruction.
///
/// The epoch model cares only about how an instruction participates in
/// dependence tracking and window termination, so classes — not opcodes —
/// are the unit of modelling:
///
/// * [`Alu`](OpKind::Alu) — any register-to-register computation.
/// * [`Load`](OpKind::Load) / [`Store`](OpKind::Store) — memory operations
///   with an effective address; loads may miss off-chip (a *Dmiss* in the
///   paper's terminology).
/// * [`Prefetch`](OpKind::Prefetch) — a software prefetch; a *useful* one
///   that misses off-chip (a *Pmiss*) contributes to MLP.
/// * [`Branch`](OpKind::Branch) — control transfer; a mispredicted branch
///   that depends on a missing load is *unresolvable* and terminates the
///   window.
/// * [`Membar`](OpKind::Membar) and [`Atomic`](OpKind::Atomic) — the
///   *serializing instructions* (SPARC `MEMBAR`, `CASA`/`LDSTUB`) whose
///   straightforward implementation drains the pipeline and which the
///   paper identifies as a dominant MLP impediment at large window sizes.
/// * [`Nop`](OpKind::Nop) — occupies fetch/ROB slots but carries no
///   dependences.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Register-to-register computation (adds, logicals, shifts, ...).
    Alu,
    /// A load from memory into a destination register.
    Load,
    /// A store of a register to memory.
    Store,
    /// A software (read) prefetch of a cache line.
    Prefetch,
    /// A control-transfer instruction.
    Branch(BranchKind),
    /// A memory barrier (`MEMBAR`): serializing, no memory access of its own.
    Membar,
    /// An atomic read-modify-write (`CASA`/`LDSTUB`): serializing *and* a
    /// memory operation (it both loads and stores its effective address).
    Atomic,
    /// No-operation.
    Nop,
}

impl OpKind {
    /// Whether this instruction reads memory through an effective address
    /// (loads, atomics, and software prefetches).
    #[inline]
    pub const fn reads_memory(self) -> bool {
        matches!(self, OpKind::Load | OpKind::Atomic | OpKind::Prefetch)
    }

    /// Whether this instruction writes memory (stores and atomics).
    #[inline]
    pub const fn writes_memory(self) -> bool {
        matches!(self, OpKind::Store | OpKind::Atomic)
    }

    /// Whether this instruction is a memory operation of any kind.
    #[inline]
    pub const fn is_memory(self) -> bool {
        self.reads_memory() || self.writes_memory()
    }

    /// Whether this instruction is *serializing* — a straightforward
    /// implementation drains the pipeline before it issues, which is a
    /// window-termination condition in issue configurations A–D.
    #[inline]
    pub const fn is_serializing(self) -> bool {
        matches!(self, OpKind::Membar | OpKind::Atomic)
    }

    /// Whether this instruction is a control transfer.
    #[inline]
    pub const fn is_branch(self) -> bool {
        matches!(self, OpKind::Branch(_))
    }

    /// A short mnemonic used in trace dumps.
    pub fn mnemonic(self) -> &'static str {
        match self {
            OpKind::Alu => "alu",
            OpKind::Load => "load",
            OpKind::Store => "store",
            OpKind::Prefetch => "pref",
            OpKind::Branch(BranchKind::Conditional) => "bcc",
            OpKind::Branch(BranchKind::Call) => "call",
            OpKind::Branch(BranchKind::Return) => "ret",
            OpKind::Branch(BranchKind::Indirect) => "jmpl",
            OpKind::Membar => "membar",
            OpKind::Atomic => "casa",
            OpKind::Nop => "nop",
        }
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_classification() {
        assert!(OpKind::Load.reads_memory());
        assert!(!OpKind::Load.writes_memory());
        assert!(OpKind::Store.writes_memory());
        assert!(!OpKind::Store.reads_memory());
        assert!(OpKind::Atomic.reads_memory());
        assert!(OpKind::Atomic.writes_memory());
        assert!(OpKind::Prefetch.reads_memory());
        assert!(!OpKind::Alu.is_memory());
        assert!(!OpKind::Membar.is_memory());
    }

    #[test]
    fn serializing_classification() {
        assert!(OpKind::Membar.is_serializing());
        assert!(OpKind::Atomic.is_serializing());
        assert!(!OpKind::Load.is_serializing());
        assert!(!OpKind::Branch(BranchKind::Conditional).is_serializing());
    }

    #[test]
    fn branch_classification() {
        for k in [
            BranchKind::Conditional,
            BranchKind::Call,
            BranchKind::Return,
            BranchKind::Indirect,
        ] {
            assert!(OpKind::Branch(k).is_branch());
        }
        assert!(!OpKind::Alu.is_branch());
    }

    #[test]
    fn mnemonics_are_distinct_for_major_classes() {
        let all = [
            OpKind::Alu,
            OpKind::Load,
            OpKind::Store,
            OpKind::Prefetch,
            OpKind::Branch(BranchKind::Conditional),
            OpKind::Branch(BranchKind::Call),
            OpKind::Branch(BranchKind::Return),
            OpKind::Branch(BranchKind::Indirect),
            OpKind::Membar,
            OpKind::Atomic,
            OpKind::Nop,
        ];
        let mut names: Vec<_> = all.iter().map(|k| k.mnemonic()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len());
    }
}
