//! The `trace-bitflip` fault-injection site, in its own test binary: the
//! armed fault is process-global, so these tests must not share a
//! process with other tests that read traces.

use mlp_isa::{tracefile, tracefile::TraceFileError, Inst};
use std::sync::Mutex;

/// Header is 16 bytes, each record 40 bytes (see the tracefile layout).
const HEADER_BYTES: usize = 16;
const RECORD_BYTES: usize = 40;

/// The armed fault is process-global; serialize the tests here too.
static LOCK: Mutex<()> = Mutex::new(());

#[test]
fn injected_bitflip_corrupts_exactly_the_armed_record() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let trace = vec![Inst::nop(0), Inst::nop(4), Inst::nop(8)];
    let mut buf = Vec::new();
    tracefile::write(&mut buf, &trace).unwrap();

    // Flip the top bit of the second record's kind byte: a nop (10)
    // becomes 0x8a, an unknown instruction kind.
    let bit = ((HEADER_BYTES + RECORD_BYTES + 32) * 8 + 7) as u64;
    mlp_faults::set_for_test(Some((mlp_faults::TRACE_BITFLIP, bit)));
    let flipped = tracefile::read(buf.as_slice());
    mlp_faults::set_for_test(None);
    match flipped {
        Err(TraceFileError::Corrupt { record, .. }) => assert_eq!(record, 1),
        other => panic!("expected record-1 corruption, got {other:?}"),
    }

    // Disarmed, the same bytes parse cleanly — the fault never touches
    // the underlying buffer.
    assert_eq!(tracefile::read(buf.as_slice()).unwrap(), trace);
}

#[test]
fn bitflip_in_slack_bits_can_pass_validation() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // Flipping a bit of a pc changes payload, not validity: the read
    // must still succeed (deterministically) rather than panic.
    let trace = vec![Inst::nop(0x100)];
    let mut buf = Vec::new();
    tracefile::write(&mut buf, &trace).unwrap();
    let bit = (HEADER_BYTES * 8) as u64; // bit 0 of the first record's pc
    mlp_faults::set_for_test(Some((mlp_faults::TRACE_BITFLIP, bit)));
    let flipped = tracefile::read(buf.as_slice()).expect("pc flip stays well-formed");
    mlp_faults::set_for_test(None);
    assert_eq!(flipped[0].pc, 0x101);
}
