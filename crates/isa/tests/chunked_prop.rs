//! Property-based tests of the chunked (v2) trace format: lossless
//! round-trips at arbitrary chunk capacities, random access through the
//! chunk index, and decoder totality over truncated, bit-flipped and
//! arbitrary byte streams.

use mlp_isa::{chunked, BranchKind, Inst, InstBuilder, OpKind, Reg, TraceSoA};
use proptest::prelude::*;
use std::io::Cursor;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..Reg::COUNT as u8).prop_map(Reg::int)
}

fn arb_kind() -> impl Strategy<Value = OpKind> {
    prop_oneof![
        Just(OpKind::Alu),
        Just(OpKind::Load),
        Just(OpKind::Store),
        Just(OpKind::Prefetch),
        Just(OpKind::Branch(BranchKind::Conditional)),
        Just(OpKind::Branch(BranchKind::Call)),
        Just(OpKind::Branch(BranchKind::Return)),
        Just(OpKind::Branch(BranchKind::Indirect)),
        Just(OpKind::Membar),
        Just(OpKind::Atomic),
        Just(OpKind::Nop),
    ]
}

prop_compose! {
    fn arb_inst()(
        pc in any::<u64>(),
        kind in arb_kind(),
        srcs in proptest::collection::vec(arb_reg(), 0..=3),
        dst in proptest::option::of(arb_reg()),
        addr in any::<u64>(),
        size in prop_oneof![Just(1u8), Just(2), Just(4), Just(8), Just(64)],
        taken in any::<bool>(),
        target in any::<u64>(),
        value in any::<u64>(),
    ) -> Inst {
        let mut b = InstBuilder::new(pc, kind).value(value);
        for s in srcs { b = b.src(s); }
        if let Some(d) = dst { b = b.dst(d); }
        if kind.is_memory() || kind == OpKind::Prefetch {
            b = b.mem(addr, size);
        }
        if let OpKind::Branch(bk) = kind {
            b = b.branch(bk, taken, target);
        }
        b.build()
    }
}

/// Writes `insts` as a v2 stream with the given chunk capacity.
fn write_v2(insts: &[Inst], chunk_cap: u32) -> Vec<u8> {
    let mut buf = Vec::new();
    let mut w = chunked::ChunkedWriter::new(&mut buf, chunk_cap).unwrap();
    for inst in insts {
        w.push(inst).unwrap();
    }
    w.finish().unwrap();
    buf
}

proptest! {
    /// v2 round-trips losslessly at any chunk capacity, including caps
    /// that force many partial chunks. The decoded SoA must also agree
    /// on the derived columns (it re-derives them through the same
    /// `TraceSoA::push` path).
    #[test]
    fn chunked_round_trips(
        insts in proptest::collection::vec(arb_inst(), 0..300),
        chunk_cap in 1u32..128,
    ) {
        let buf = write_v2(&insts, chunk_cap);
        let soa = chunked::read_all(buf.as_slice()).unwrap();
        prop_assert_eq!(soa.len(), insts.len());
        for (i, inst) in insts.iter().enumerate() {
            prop_assert_eq!(&soa.get(i), inst);
        }
        let reference = TraceSoA::from_insts(&insts);
        prop_assert_eq!(soa.candidates(), reference.candidates());
    }

    /// Chunk-at-a-time streaming sees exactly the written instructions in
    /// order, each chunk at most `chunk_cap` long, and the random-access
    /// path (`read_index` + `locate` + `read_chunk_at`) agrees with the
    /// streaming one for every instruction.
    #[test]
    fn chunk_iteration_and_random_access_agree(
        insts in proptest::collection::vec(arb_inst(), 1..200),
        chunk_cap in 1u32..64,
        probe in any::<prop::sample::Index>(),
    ) {
        let buf = write_v2(&insts, chunk_cap);
        let mut trace = chunked::ChunkedTrace::new(Cursor::new(&buf)).unwrap();
        let mut streamed = Vec::new();
        while let Some(chunk) = trace.next_chunk().unwrap() {
            prop_assert!(chunk.len() <= chunk_cap as usize);
            for i in 0..chunk.len() {
                streamed.push(chunk.get(i));
            }
        }
        prop_assert_eq!(&streamed, &insts);

        let mut r = Cursor::new(&buf);
        let index = chunked::read_index(&mut r).unwrap();
        prop_assert_eq!(index.total_insts, insts.len() as u64);
        let i = probe.index(insts.len());
        let (k, start) = index.locate(i as u64).unwrap();
        let chunk = chunked::read_chunk_at(&mut r, &index, k).unwrap();
        prop_assert_eq!(&chunk.get(i - start as usize), &insts[i]);
    }

    /// Reading any prefix of a valid v2 stream must return a typed error
    /// or a shorter trace, never panic.
    #[test]
    fn truncated_chunked_streams_never_panic(
        insts in proptest::collection::vec(arb_inst(), 1..100),
        chunk_cap in 1u32..64,
        cut in any::<prop::sample::Index>(),
    ) {
        let buf = write_v2(&insts, chunk_cap);
        let cut = cut.index(buf.len());
        match chunked::read_all(&buf[..cut]) {
            Ok(soa) => prop_assert!(soa.len() <= insts.len()),
            Err(e) => {
                let _ = e.to_string();
            }
        }
        // The seekable index reader must be total over prefixes too.
        let _ = chunked::read_index(&mut Cursor::new(&buf[..cut]));
    }

    /// Arbitrary byte soup: `read_all` is a total function — `Ok` or a
    /// typed `TraceFileError`, never a panic, and never an allocation
    /// sized by hostile length fields (the proptest time budget catches
    /// overallocation as a hang).
    #[test]
    fn arbitrary_bytes_never_panic_chunked(
        bytes in proptest::collection::vec(any::<u8>(), 0..2048),
    ) {
        if let Err(e) = chunked::read_all(bytes.as_slice()) {
            let _ = e.to_string();
        }
        let _ = chunked::read_index(&mut Cursor::new(&bytes));
    }

    /// Same behind a valid header, so the fuzz bytes reach the frame and
    /// payload decoders instead of dying at the magic check.
    #[test]
    fn arbitrary_frames_behind_valid_header_never_panic(
        chunk_cap in 1u32..=chunked::MAX_CHUNK_INSTS,
        body in proptest::collection::vec(any::<u8>(), 0..1024),
    ) {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"MLP2");
        buf.extend_from_slice(&2u16.to_le_bytes());
        buf.extend_from_slice(&0u16.to_le_bytes());
        buf.extend_from_slice(&chunk_cap.to_le_bytes());
        buf.extend_from_slice(&body);
        if let Err(e) = chunked::read_all(buf.as_slice()) {
            let _ = e.to_string();
        }
    }

    /// Flipping any single byte of a valid stream must yield `Ok` or a
    /// typed error; a `CorruptChunk` must carry a chunk index no larger
    /// than the stream could contain (each frame is at least 20 bytes).
    #[test]
    fn mutated_chunked_streams_never_panic(
        insts in proptest::collection::vec(arb_inst(), 1..80),
        chunk_cap in 1u32..64,
        at in any::<prop::sample::Index>(),
        xor in 1u8..=255,
    ) {
        let mut buf = write_v2(&insts, chunk_cap);
        let at = at.index(buf.len());
        buf[at] ^= xor;
        match chunked::read_all(buf.as_slice()) {
            Ok(soa) => prop_assert!(soa.len() <= insts.len()),
            Err(mlp_isa::tracefile::TraceFileError::CorruptChunk { chunk, .. }) => {
                prop_assert!(chunk <= buf.len() as u64 / 20 + 1);
            }
            Err(e) => {
                let _ = e.to_string();
            }
        }
        let _ = chunked::read_index(&mut Cursor::new(&buf));
    }
}
