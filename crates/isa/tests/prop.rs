//! Property-based tests of the trace model and binary trace format.

use mlp_isa::{tracefile, BranchKind, Inst, InstBuilder, OpKind, Reg, LINE_BYTES};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..Reg::COUNT as u8).prop_map(Reg::int)
}

fn arb_kind() -> impl Strategy<Value = OpKind> {
    prop_oneof![
        Just(OpKind::Alu),
        Just(OpKind::Load),
        Just(OpKind::Store),
        Just(OpKind::Prefetch),
        Just(OpKind::Branch(BranchKind::Conditional)),
        Just(OpKind::Branch(BranchKind::Call)),
        Just(OpKind::Branch(BranchKind::Return)),
        Just(OpKind::Branch(BranchKind::Indirect)),
        Just(OpKind::Membar),
        Just(OpKind::Atomic),
        Just(OpKind::Nop),
    ]
}

prop_compose! {
    fn arb_inst()(
        pc in any::<u64>(),
        kind in arb_kind(),
        srcs in proptest::collection::vec(arb_reg(), 0..=3),
        dst in proptest::option::of(arb_reg()),
        addr in any::<u64>(),
        size in prop_oneof![Just(1u8), Just(2), Just(4), Just(8), Just(64)],
        taken in any::<bool>(),
        target in any::<u64>(),
        value in any::<u64>(),
    ) -> Inst {
        let mut b = InstBuilder::new(pc, kind).value(value);
        for s in srcs { b = b.src(s); }
        if let Some(d) = dst { b = b.dst(d); }
        if kind.is_memory() || kind == OpKind::Prefetch {
            b = b.mem(addr, size);
        }
        if let OpKind::Branch(bk) = kind {
            b = b.branch(bk, taken, target);
        }
        b.build()
    }
}

proptest! {
    #[test]
    fn tracefile_round_trips(insts in proptest::collection::vec(arb_inst(), 0..200)) {
        let mut buf = Vec::new();
        tracefile::write(&mut buf, &insts).unwrap();
        let back = tracefile::read(buf.as_slice()).unwrap();
        prop_assert_eq!(back, insts);
    }

    #[test]
    fn line_of_is_aligned_and_containing(addr in any::<u64>()) {
        let line = mlp_isa::line_of(addr);
        prop_assert_eq!(line % LINE_BYTES, 0);
        prop_assert!(line <= addr);
        prop_assert!(addr - line < LINE_BYTES);
    }

    #[test]
    fn dep_srcs_never_yield_zero_register(inst in arb_inst()) {
        prop_assert!(inst.dep_srcs().all(|r| !r.is_zero()));
        if let Some(d) = inst.dep_dst() {
            prop_assert!(!d.is_zero());
        }
    }

    #[test]
    fn next_pc_is_target_or_fallthrough(inst in arb_inst()) {
        let next = inst.next_pc();
        match inst.branch {
            Some(b) if b.taken => prop_assert_eq!(next, b.target),
            _ => prop_assert_eq!(next, inst.pc.wrapping_add(4)),
        }
    }

    #[test]
    fn truncated_streams_never_panic(
        insts in proptest::collection::vec(arb_inst(), 1..50),
        cut in any::<prop::sample::Index>(),
    ) {
        let mut buf = Vec::new();
        tracefile::write(&mut buf, &insts).unwrap();
        let cut = cut.index(buf.len());
        // Reading any prefix must return an error or a shorter trace,
        // never panic.
        let _ = tracefile::read(&buf[..cut]);
    }

    /// Arbitrary byte soup is a total function of the input: `read` must
    /// return `Ok` or a typed `TraceFileError`, never panic. The tight
    /// time budget of a proptest run also catches overallocation — a
    /// hostile header claiming `u64::MAX` records must fail on the
    /// missing bytes, not reserve memory for the claim.
    #[test]
    fn arbitrary_bytes_never_panic(
        bytes in proptest::collection::vec(any::<u8>(), 0..2048),
    ) {
        match tracefile::read(bytes.as_slice()) {
            Ok(insts) => {
                // A successful parse accounts for the whole stream.
                prop_assert_eq!(bytes.len(), 16 + insts.len() * 40);
            }
            Err(e) => {
                // Errors must render without panicking too.
                let _ = e.to_string();
            }
        }
    }

    /// Same with a valid header stapled on: exercises the record decoder
    /// instead of dying at the magic check.
    #[test]
    fn arbitrary_records_behind_valid_header_never_panic(
        count in 0u64..64,
        body in proptest::collection::vec(any::<u8>(), 0..1024),
    ) {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"MLPT");
        buf.extend_from_slice(&1u16.to_le_bytes());
        buf.extend_from_slice(&0u16.to_le_bytes());
        buf.extend_from_slice(&count.to_le_bytes());
        buf.extend_from_slice(&body);
        let _ = tracefile::read(buf.as_slice());
    }

    /// Mutating any single byte of a valid stream must yield `Ok` or a
    /// typed error — and a `Corrupt` error must point at a record the
    /// stream actually declares (or one past, for trailing garbage).
    #[test]
    fn mutated_valid_streams_never_panic(
        insts in proptest::collection::vec(arb_inst(), 1..40),
        at in any::<prop::sample::Index>(),
        xor in 1u8..=255,
    ) {
        let mut buf = Vec::new();
        tracefile::write(&mut buf, &insts).unwrap();
        let at = at.index(buf.len());
        buf[at] ^= xor;
        match tracefile::read(buf.as_slice()) {
            Ok(_) => {}
            Err(tracefile::TraceFileError::Corrupt { record, .. }) => {
                prop_assert!(record <= insts.len() as u64);
            }
            Err(_) => {}
        }
    }
}

proptest! {
    /// The SoA view is lossless: round-tripping `&[Inst]` through
    /// `TraceSoA` and reconstructing each index yields the original
    /// instruction exactly — pc, kind, operands, memory access, branch
    /// info and value all survive the columnar split.
    #[test]
    fn soa_round_trips_losslessly(
        insts in proptest::collection::vec(arb_inst(), 0..300),
    ) {
        let soa = mlp_isa::TraceSoA::from_insts(&insts);
        prop_assert_eq!(soa.len(), insts.len());
        prop_assert_eq!(soa.is_empty(), insts.is_empty());
        for (i, inst) in insts.iter().enumerate() {
            prop_assert_eq!(&soa.get(i), inst);
        }
    }

    /// The pre-classified candidate index matches a naive per-inst
    /// classification scan: exactly the memory-reading instructions, in
    /// trace order, regardless of how the trace was generated.
    #[test]
    fn soa_candidates_match_naive_scan(
        insts in proptest::collection::vec(arb_inst(), 0..300),
    ) {
        let soa = mlp_isa::TraceSoA::from_insts(&insts);
        let naive: Vec<u32> = insts
            .iter()
            .enumerate()
            .filter(|(_, i)| i.kind.reads_memory())
            .map(|(i, _)| i as u32)
            .collect();
        prop_assert_eq!(soa.candidates(), naive.as_slice());
        // Incremental pushes agree with batch construction.
        let mut grown = mlp_isa::TraceSoA::new();
        grown.extend_from_slice(&insts);
        prop_assert_eq!(grown.candidates(), soa.candidates());
    }
}
