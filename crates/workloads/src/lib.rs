//! Synthetic commercial workload generators for the MLP study.
//!
//! The ISCA 2004 paper evaluates three proprietary commercial traces — a
//! database workload, SPECjbb2000 and SPECweb99 — which cannot be
//! redistributed. This crate substitutes parameterized synthetic
//! generators calibrated to the workload statistics the paper publishes:
//! L2 miss rates per 100 instructions (0.84 / 0.19 / 0.09), strong
//! clustering of off-chip accesses (Figure 2), the share of dependent
//! (pointer-chasing) misses, serializing-instruction frequency (CASA is
//! ~0.6% of SPECjbb2000's dynamic instructions), instruction-fetch miss
//! behaviour, software-prefetch usage (SPECweb99) and missing-load value
//! predictability (Table 6).
//!
//! The generator builds a static **program ring** — a cyclic pseudo-program
//! whose instruction classes are a deterministic function of the slot
//! index, so branch sites, load sites and cache lines recur exactly as in
//! real code — and then *walks* it dynamically, sampling branch outcomes,
//! effective addresses and loaded values. Off-chip misses come from three
//! mechanisms:
//!
//! * **miss zones**: dense stretches of cold-load sites, giving the
//!   clustered inter-miss distributions of Figure 2;
//! * **pointer chases**: persistent linked lists larger than the L2 whose
//!   nodes are re-walked, giving dependent misses with stable values;
//! * **cold-code excursions**: calls into never-reused code pages, giving
//!   instruction-fetch misses.
//!
//! # Examples
//!
//! ```
//! use mlp_workloads::{Workload, WorkloadKind};
//!
//! let mut wl = Workload::new(WorkloadKind::Database, 42);
//! let insts = mlp_isa::TraceSource::take_insts(&mut wl, 10_000);
//! assert_eq!(insts.len(), 10_000);
//! // Deterministic: the same seed generates the same trace.
//! let mut wl2 = Workload::new(WorkloadKind::Database, 42);
//! assert_eq!(mlp_isa::TraceSource::take_insts(&mut wl2, 10_000), insts);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
pub mod micro;
mod program;
mod store;
mod walker;

pub use config::{WorkloadConfig, WorkloadKind};
pub use store::{SharedTrace, TraceChunks, TraceCursor, TraceStore};
pub use walker::Workload;
