use crate::program::{layout, BranchBehavior, Program, Slot};
use crate::{WorkloadConfig, WorkloadKind};
use mlp_hash::FxHashMap;
use mlp_isa::{Inst, Reg};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Register conventions of the synthetic programs.
mod regs {
    use mlp_isa::Reg;

    /// Base register for hot data (always available on chip).
    pub fn hot_base() -> Reg {
        Reg::int(1)
    }
    /// Base register for lock words.
    pub fn lock_base() -> Reg {
        Reg::int(2)
    }
    /// The pointer-chase cursor: each chain load reads and writes it.
    pub fn chain() -> Reg {
        Reg::int(4)
    }
    /// Destination of independent cold loads.
    pub fn cold() -> Reg {
        Reg::int(5)
    }
    /// Destination of CASA old values.
    pub fn casa_dst() -> Reg {
        Reg::int(7)
    }
    /// Rotating destinations of hot loads: r8..r15.
    pub fn hot_dst(rot: usize) -> Reg {
        Reg::int(8 + (rot % 8) as u8)
    }
    /// Rotating ALU destinations: r16..r27.
    pub fn alu_dst(rot: usize) -> Reg {
        Reg::int(16 + (rot % 12) as u8)
    }
    /// Sink for consumers of missing values (never read by anything else,
    /// so consuming a miss does not poison the ALU rotation).
    pub fn sink() -> Reg {
        Reg::int(28)
    }
}

/// Maximum hot-call nesting the walker models.
const MAX_CALL_DEPTH: usize = 8;

#[derive(Clone, Debug)]
struct Excursion {
    remaining: usize,
    pc: u64,
    ret_idx: usize,
    ret_pc: u64,
}

/// A streaming synthetic workload trace.
///
/// `Workload` implements [`Iterator`] over [`Inst`] (and therefore
/// [`mlp_isa::TraceSource`]), generating the dynamic instruction stream on
/// the fly, deterministically from `(kind/config, seed)`.
///
/// # Examples
///
/// ```
/// use mlp_workloads::{Workload, WorkloadKind};
///
/// let wl = Workload::new(WorkloadKind::SpecJbb2000, 1);
/// let casa = wl.take(100_000).filter(|i| i.kind == mlp_isa::OpKind::Atomic).count();
/// assert!(casa > 300, "SPECjbb2000 uses CASA heavily (got {casa})");
/// ```
#[derive(Clone, Debug)]
pub struct Workload {
    program: Program,
    rng: SmallRng,
    idx: usize,
    call_stack: Vec<usize>,
    excursion: Option<Excursion>,
    planned: FxHashMap<u32, VecDeque<u64>>,
    sticky: FxHashMap<u32, u64>,
    chase_pos: usize,
    branch_visits: FxHashMap<u32, u32>,
    last_cold_reg: Reg,
    last_cold_value: u64,
    alu_rot: usize,
    hot_rot: usize,
    emitted: u64,
}

impl Workload {
    /// Creates the calibrated workload `kind`, seeded for determinism.
    pub fn new(kind: WorkloadKind, seed: u64) -> Workload {
        Workload::with_config(&kind.config(), seed)
    }

    /// Creates a workload from an explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`WorkloadConfig::validate`].
    pub fn with_config(config: &WorkloadConfig, seed: u64) -> Workload {
        let program = Program::build(config, seed);
        Workload {
            program,
            rng: SmallRng::seed_from_u64(seed ^ 0x77a1_55d4_21f0_9e3b),
            idx: 0,
            call_stack: Vec::new(),
            excursion: None,
            planned: FxHashMap::default(),
            sticky: FxHashMap::default(),
            chase_pos: 0,
            branch_visits: FxHashMap::default(),
            last_cold_reg: regs::cold(),
            last_cold_value: layout::HOT_DATA_BASE,
            alu_rot: 0,
            hot_rot: 0,
            emitted: 0,
        }
    }

    /// The generator configuration in effect.
    pub fn config(&self) -> &WorkloadConfig {
        &self.program.cfg
    }

    /// Instructions generated so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    fn fresh_cold_addr(&mut self) -> u64 {
        let lines = self.program.cfg.cold_data_bytes / mlp_isa::LINE_BYTES;
        layout::COLD_DATA_BASE + self.rng.gen_range(0..lines) * mlp_isa::LINE_BYTES
    }

    fn hot_addr(&mut self) -> u64 {
        layout::HOT_DATA_BASE + (self.rng.gen_range(0..self.program.cfg.hot_data_bytes) & !7)
    }

    fn emit_alu(&mut self, pc: u64) -> Inst {
        let a = regs::alu_dst(self.alu_rot.wrapping_sub(1));
        let b = regs::alu_dst(self.alu_rot.wrapping_sub(2));
        self.alu_rot = self.alu_rot.wrapping_add(1);
        let dst = regs::alu_dst(self.alu_rot);
        Inst::alu(pc, &[a, b], dst).with_value(self.rng.gen_range(0..1 << 16))
    }

    fn step_slot(&mut self) -> Inst {
        let idx = self.idx;
        let pc = self.program.pc_of(idx);
        let ring = self.program.len();
        let slot = self.program.slots[idx];
        let mut next = (idx + 1) % ring;
        let inst = match slot {
            Slot::Alu => self.emit_alu(pc),
            Slot::HotLoad => {
                let addr = self.hot_addr();
                self.hot_rot = self.hot_rot.wrapping_add(1);
                Inst::load(pc, regs::hot_base(), 0, regs::hot_dst(self.hot_rot), addr)
                    .with_value(self.rng.gen_range(0..256))
            }
            Slot::HotStore => {
                let addr = self.hot_addr();
                Inst::store(pc, regs::hot_base(), 0, regs::alu_dst(self.alu_rot), addr)
            }
            Slot::ColdLoad { chain: true, .. } => {
                let nodes = &self.program.chase_nodes;
                let node = nodes[self.chase_pos];
                let next_node = nodes[(self.chase_pos + 1) % nodes.len()];
                self.chase_pos = (self.chase_pos + 1) % nodes.len();
                self.last_cold_reg = regs::chain();
                self.last_cold_value = next_node;
                Inst::load(pc, regs::chain(), 0, regs::chain(), node).with_value(next_node)
            }
            Slot::ColdLoad { chain: false, zone } => {
                let addr = self
                    .planned
                    .get_mut(&zone)
                    .and_then(|q| q.pop_front())
                    .unwrap_or_else(|| self.fresh_cold_addr());
                let site = idx as u32;
                let stability = self.program.cfg.value_stability;
                let value = match self.sticky.get(&site) {
                    Some(&v) if self.rng.gen_bool(stability) => v,
                    _ => {
                        let v = self.rng.gen::<u64>();
                        self.sticky.insert(site, v);
                        v
                    }
                };
                self.last_cold_reg = regs::cold();
                self.last_cold_value = value;
                // Base register is a recent on-chip ALU value, so the miss
                // is overlappable (independent of other misses).
                Inst::load(pc, regs::alu_dst(self.alu_rot), 0, regs::cold(), addr).with_value(value)
            }
            Slot::DepStore => {
                // Address derived from the most recent missing value: the
                // store cannot resolve until that miss returns. The target
                // line itself stays on chip (hot region).
                let addr = (layout::HOT_DATA_BASE
                    + (self.last_cold_value % self.program.cfg.hot_data_bytes))
                    & !7;
                Inst::store(pc, self.last_cold_reg, 0, regs::alu_dst(self.alu_rot), addr)
            }
            Slot::ColdStore => {
                // A write to a line far from any recent access: the fill
                // goes off chip but the store buffer hides it (unless the
                // simulator models a finite buffer).
                let addr = self.fresh_cold_addr();
                Inst::store(
                    pc,
                    regs::alu_dst(self.alu_rot),
                    0,
                    regs::alu_dst(self.alu_rot.wrapping_sub(1)),
                    addr,
                )
            }
            Slot::Consume => {
                // Use the most recent missing value promptly, as real code
                // does; the destination is a sink so the ALU rotation (and
                // therefore later addresses) stays miss-independent.
                Inst::alu(pc, &[self.last_cold_reg], regs::sink())
            }
            Slot::Prefetch { zone } => {
                let addr = self.fresh_cold_addr();
                let cap = 4 * self.program.cfg.zone_len / self.program.cfg.zone_gap.max(1);
                let q = self.planned.entry(zone).or_default();
                if q.len() < cap {
                    q.push_back(addr);
                }
                Inst::prefetch(pc, regs::hot_base(), addr)
            }
            Slot::Branch {
                behavior,
                skip,
                dep_miss,
            } => {
                let taken = match behavior {
                    BranchBehavior::Random => self.rng.gen_bool(0.5),
                    BranchBehavior::Pattern {
                        period,
                        mostly_taken,
                    } => {
                        let v = self.branch_visits.entry(idx as u32).or_insert(0);
                        *v += 1;
                        let flip = v.is_multiple_of(period as u32);
                        mostly_taken ^ flip
                    }
                };
                let target_idx = (idx + 1 + skip as usize) % ring;
                let cond = if dep_miss {
                    self.last_cold_reg
                } else {
                    regs::alu_dst(self.alu_rot)
                };
                if taken {
                    next = target_idx;
                }
                Inst::cond_branch(pc, cond, taken, self.program.pc_of(target_idx))
            }
            Slot::HotCall { target } => {
                if self.call_stack.len() < MAX_CALL_DEPTH {
                    self.call_stack.push((idx + 1) % ring);
                    next = target as usize % ring;
                    Inst::call(pc, self.program.pc_of(next))
                } else {
                    self.emit_alu(pc)
                }
            }
            Slot::Ret => match self.call_stack.pop() {
                Some(ret_idx) => {
                    next = ret_idx;
                    Inst::ret(pc, self.program.pc_of(ret_idx))
                }
                None => self.emit_alu(pc),
            },
            Slot::ColdCall => {
                let cfg = &self.program.cfg;
                let len = cfg.icold_len_mean / 2
                    + self.rng.gen_range(0..cfg.icold_len_mean.max(1) as u64) as usize;
                let lines = layout::COLD_CODE_BYTES / mlp_isa::LINE_BYTES;
                let target =
                    layout::COLD_CODE_BASE + self.rng.gen_range(0..lines) * mlp_isa::LINE_BYTES;
                self.excursion = Some(Excursion {
                    remaining: len.max(1),
                    pc: target,
                    ret_idx: (idx + 1) % ring,
                    ret_pc: self.program.pc_of((idx + 1) % ring),
                });
                Inst::call(pc, target)
            }
            Slot::Casa => {
                let addr = layout::LOCK_BASE + self.rng.gen_range(0..1024u64) * 64;
                Inst::casa(
                    pc,
                    regs::lock_base(),
                    regs::alu_dst(self.alu_rot),
                    regs::alu_dst(self.alu_rot.wrapping_sub(1)),
                    regs::casa_dst(),
                    addr,
                )
                .with_value(self.rng.gen_range(0..4))
            }
            Slot::Membar => Inst::membar(pc),
        };
        self.idx = next;
        inst
    }

    /// Serializes the generator's dynamic state (RNG, ring position, call
    /// stack, planned prefetches, sticky values, ...) into a stable,
    /// versioned byte snapshot. Restoring it with [`Workload::restore`]
    /// resumes the stream exactly where it left off: the continuation is
    /// byte-identical to an uninterrupted run.
    ///
    /// The static program is *not* serialized — it is a pure function of
    /// `(config, seed)` and is rebuilt on restore. Map contents are
    /// written in sorted key order, so the same state always produces the
    /// same bytes.
    pub fn checkpoint(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(256);
        out.extend_from_slice(ckpt::MAGIC);
        out.extend_from_slice(&ckpt::VERSION.to_le_bytes());
        out.extend_from_slice(&self.program.seed.to_le_bytes());
        for w in self.rng.state() {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out.extend_from_slice(&self.emitted.to_le_bytes());
        out.extend_from_slice(&(self.idx as u64).to_le_bytes());
        out.extend_from_slice(&(self.chase_pos as u64).to_le_bytes());
        out.extend_from_slice(&(self.alu_rot as u64).to_le_bytes());
        out.extend_from_slice(&(self.hot_rot as u64).to_le_bytes());
        out.push(self.last_cold_reg.index() as u8);
        out.extend_from_slice(&self.last_cold_value.to_le_bytes());
        out.extend_from_slice(&(self.call_stack.len() as u32).to_le_bytes());
        for &f in &self.call_stack {
            out.extend_from_slice(&(f as u64).to_le_bytes());
        }
        match &self.excursion {
            None => out.push(0),
            Some(ex) => {
                out.push(1);
                out.extend_from_slice(&(ex.remaining as u64).to_le_bytes());
                out.extend_from_slice(&ex.pc.to_le_bytes());
                out.extend_from_slice(&(ex.ret_idx as u64).to_le_bytes());
                out.extend_from_slice(&ex.ret_pc.to_le_bytes());
            }
        }
        let mut planned: Vec<_> = self.planned.iter().collect();
        planned.sort_by_key(|(k, _)| **k);
        out.extend_from_slice(&(planned.len() as u32).to_le_bytes());
        for (k, q) in planned {
            out.extend_from_slice(&k.to_le_bytes());
            out.extend_from_slice(&(q.len() as u32).to_le_bytes());
            for &a in q {
                out.extend_from_slice(&a.to_le_bytes());
            }
        }
        let mut sticky: Vec<_> = self.sticky.iter().collect();
        sticky.sort_by_key(|(k, _)| **k);
        out.extend_from_slice(&(sticky.len() as u32).to_le_bytes());
        for (k, v) in sticky {
            out.extend_from_slice(&k.to_le_bytes());
            out.extend_from_slice(&v.to_le_bytes());
        }
        let mut visits: Vec<_> = self.branch_visits.iter().collect();
        visits.sort_by_key(|(k, _)| **k);
        out.extend_from_slice(&(visits.len() as u32).to_le_bytes());
        for (k, v) in visits {
            out.extend_from_slice(&k.to_le_bytes());
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// The seed recorded in a [`Workload::checkpoint`] snapshot, without
    /// restoring it.
    pub fn checkpoint_seed(bytes: &[u8]) -> Result<u64, &'static str> {
        let mut cur = ckpt::Cur::new(bytes)?;
        cur.u64()
    }

    /// Rebuilds a generator from a configuration and a
    /// [`Workload::checkpoint`] snapshot (the seed is part of the
    /// snapshot). Returns an error on any truncated, corrupt or
    /// version-mismatched snapshot; never panics.
    pub fn restore(config: &WorkloadConfig, bytes: &[u8]) -> Result<Workload, &'static str> {
        let mut cur = ckpt::Cur::new(bytes)?;
        let seed = cur.u64()?;
        let mut rng_state = [0u64; 4];
        for w in &mut rng_state {
            *w = cur.u64()?;
        }
        if rng_state == [0; 4] {
            return Err("all-zero rng state");
        }
        let program = Program::build(config, seed);
        let ring = program.len();
        let emitted = cur.u64()?;
        let idx = cur.index(ring)?;
        let chase_pos = cur.index(program.chase_nodes.len().max(1))?;
        let alu_rot = cur.u64()? as usize;
        let hot_rot = cur.u64()? as usize;
        let last_cold_reg = Reg::int_masked(cur.u8()?);
        let last_cold_value = cur.u64()?;
        let n = cur.u32()? as usize;
        if n > MAX_CALL_DEPTH {
            return Err("call stack too deep");
        }
        let mut call_stack = Vec::with_capacity(n);
        for _ in 0..n {
            call_stack.push(cur.index(ring)?);
        }
        let excursion = match cur.u8()? {
            0 => None,
            1 => Some(Excursion {
                remaining: cur.u64()? as usize,
                pc: cur.u64()?,
                ret_idx: cur.index(ring)?,
                ret_pc: cur.u64()?,
            }),
            _ => return Err("bad excursion tag"),
        };
        let n = cur.u32()? as usize;
        let mut planned: FxHashMap<u32, VecDeque<u64>> = FxHashMap::default();
        for _ in 0..n {
            let k = cur.u32()?;
            let qlen = cur.u32()? as usize;
            let mut q = VecDeque::with_capacity(qlen.min(1 << 16));
            for _ in 0..qlen {
                q.push_back(cur.u64()?);
            }
            planned.insert(k, q);
        }
        let n = cur.u32()? as usize;
        let mut sticky: FxHashMap<u32, u64> = FxHashMap::default();
        for _ in 0..n {
            let k = cur.u32()?;
            sticky.insert(k, cur.u64()?);
        }
        let n = cur.u32()? as usize;
        let mut branch_visits: FxHashMap<u32, u32> = FxHashMap::default();
        for _ in 0..n {
            let k = cur.u32()?;
            branch_visits.insert(k, cur.u32()?);
        }
        if !cur.done() {
            return Err("trailing bytes");
        }
        Ok(Workload {
            program,
            rng: SmallRng::from_state(rng_state),
            idx,
            call_stack,
            excursion,
            planned,
            sticky,
            chase_pos,
            branch_visits,
            last_cold_reg,
            last_cold_value,
            alu_rot,
            hot_rot,
            emitted,
        })
    }

    fn step_excursion(&mut self) -> Inst {
        let ex = self.excursion.as_mut().expect("excursion active");
        if ex.remaining > 0 {
            ex.remaining -= 1;
            let pc = ex.pc;
            ex.pc += 4;
            self.emit_alu(pc)
        } else {
            let (pc, ret_pc, ret_idx) = (ex.pc, ex.ret_pc, ex.ret_idx);
            self.excursion = None;
            self.idx = ret_idx;
            Inst::ret(pc, ret_pc)
        }
    }
}

/// Wire helpers for [`Workload::checkpoint`] snapshots.
mod ckpt {
    pub(super) const MAGIC: &[u8; 4] = b"MLPK";
    pub(super) const VERSION: u16 = 1;

    /// Bounds-checked little-endian reader over a snapshot.
    pub(super) struct Cur<'a> {
        b: &'a [u8],
        pos: usize,
    }

    impl<'a> Cur<'a> {
        pub(super) fn new(b: &'a [u8]) -> Result<Cur<'a>, &'static str> {
            let mut cur = Cur { b, pos: 0 };
            let mut magic = [0u8; 4];
            for m in &mut magic {
                *m = cur.u8()?;
            }
            if &magic != MAGIC {
                return Err("bad checkpoint magic");
            }
            let version = u16::from_le_bytes([cur.u8()?, cur.u8()?]);
            if version != VERSION {
                return Err("unsupported checkpoint version");
            }
            Ok(cur)
        }

        fn take(&mut self, n: usize) -> Result<&'a [u8], &'static str> {
            let end = self.pos.checked_add(n).ok_or("truncated checkpoint")?;
            if end > self.b.len() {
                return Err("truncated checkpoint");
            }
            let s = &self.b[self.pos..end];
            self.pos = end;
            Ok(s)
        }

        pub(super) fn u8(&mut self) -> Result<u8, &'static str> {
            Ok(self.take(1)?[0])
        }

        pub(super) fn u32(&mut self) -> Result<u32, &'static str> {
            Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
        }

        pub(super) fn u64(&mut self) -> Result<u64, &'static str> {
            Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
        }

        /// A u64 that must be a valid index below `bound`.
        pub(super) fn index(&mut self, bound: usize) -> Result<usize, &'static str> {
            let v = self.u64()?;
            if v >= bound as u64 {
                return Err("index out of range");
            }
            Ok(v as usize)
        }

        pub(super) fn done(&self) -> bool {
            self.pos == self.b.len()
        }
    }
}

impl Iterator for Workload {
    type Item = Inst;

    /// Produces the next dynamic instruction. The stream is unbounded.
    fn next(&mut self) -> Option<Inst> {
        self.emitted += 1;
        Some(if self.excursion.is_some() {
            self.step_excursion()
        } else {
            self.step_slot()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlp_isa::{InstMix, OpKind};
    use std::collections::HashMap;

    fn mix(kind: WorkloadKind, n: usize) -> InstMix {
        let wl = Workload::new(kind, 11);
        wl.take(n).collect::<Vec<_>>().iter().collect()
    }

    #[test]
    fn deterministic_across_instances() {
        let a: Vec<Inst> = Workload::new(WorkloadKind::SpecWeb99, 5)
            .take(50_000)
            .collect();
        let b: Vec<Inst> = Workload::new(WorkloadKind::SpecWeb99, 5)
            .take(50_000)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn database_mix_is_sane() {
        let m = mix(WorkloadKind::Database, 200_000);
        assert!(m.frac(m.loads) > 0.15 && m.frac(m.loads) < 0.40, "{m}");
        assert!(
            m.frac(m.branches()) > 0.05 && m.frac(m.branches()) < 0.25,
            "{m}"
        );
        assert!(m.serializing() > 0, "{m}");
    }

    #[test]
    fn jbb_casa_density_matches_paper() {
        let m = mix(WorkloadKind::SpecJbb2000, 300_000);
        let casa_frac = m.frac(m.atomics);
        assert!(
            casa_frac > 0.003 && casa_frac < 0.012,
            "CASA should be ~0.6% of dynamic instructions, got {casa_frac}"
        );
    }

    #[test]
    fn web_emits_prefetches_but_db_does_not() {
        let web = mix(WorkloadKind::SpecWeb99, 300_000);
        let db = mix(WorkloadKind::Database, 300_000);
        assert!(web.prefetches > 0);
        assert_eq!(db.prefetches, 0);
    }

    #[test]
    fn chain_loads_form_a_pointer_chain() {
        let wl = Workload::new(WorkloadKind::Database, 9);
        let chain_reg = regs::chain();
        let chains: Vec<Inst> = wl
            .take(500_000)
            .filter(|i| i.kind == OpKind::Load && i.dst == Some(chain_reg))
            .collect();
        assert!(chains.len() > 100, "expected many chain loads");
        // Each chain load's value is the next chain load's address.
        for w in chains.windows(2).take(200) {
            assert_eq!(
                w[0].value,
                w[1].mem.unwrap().addr,
                "chain value must be the next node address"
            );
        }
    }

    #[test]
    fn branch_targets_are_stable_per_site() {
        let wl = Workload::new(WorkloadKind::Database, 13);
        let mut target_of: HashMap<u64, u64> = HashMap::new();
        for i in wl.take(300_000) {
            if let (OpKind::Branch(mlp_isa::BranchKind::Conditional), Some(b)) = (i.kind, i.branch)
            {
                let prev = target_of.insert(i.pc, b.target);
                if let Some(p) = prev {
                    assert_eq!(p, b.target, "conditional site target must be stable");
                }
            }
        }
        assert!(target_of.len() > 100);
    }

    #[test]
    fn excursions_visit_cold_code() {
        let wl = Workload::new(WorkloadKind::Database, 17);
        let cold_pcs = wl
            .take(500_000)
            .filter(|i| i.pc >= layout::COLD_CODE_BASE)
            .count();
        assert!(
            cold_pcs > 0,
            "database workload must take cold-code excursions"
        );
    }

    #[test]
    fn calls_and_returns_balance_approximately() {
        let m = mix(WorkloadKind::Database, 300_000);
        // every call eventually returns (excursions always do; hot calls
        // unless the trace ends first)
        assert!(m.uncond_branches > 0);
    }

    #[test]
    fn emitted_counter_tracks() {
        let mut wl = Workload::new(WorkloadKind::Database, 1);
        for _ in 0..1000 {
            wl.next();
        }
        assert_eq!(wl.emitted(), 1000);
    }

    #[test]
    fn checkpoint_resume_is_byte_identical() {
        for kind in [
            WorkloadKind::Database,
            WorkloadKind::SpecJbb2000,
            WorkloadKind::SpecWeb99,
        ] {
            let mut wl = Workload::new(kind, 21);
            let head: Vec<Inst> = wl.by_ref().take(30_000).collect();
            let snap = wl.checkpoint();
            let tail: Vec<Inst> = wl.take(30_000).collect();
            let mut resumed = Workload::restore(&kind.config(), &snap).expect("valid snapshot");
            assert_eq!(resumed.emitted(), head.len() as u64);
            let resumed_tail: Vec<Inst> = resumed.by_ref().take(30_000).collect();
            assert_eq!(resumed_tail, tail, "{kind:?} continuation must match");
            // And the whole stream equals an uninterrupted run.
            let full: Vec<Inst> = Workload::new(kind, 21).take(60_000).collect();
            assert_eq!([head, tail].concat(), full);
        }
    }

    #[test]
    fn checkpoint_encoding_is_stable() {
        let mut a = Workload::new(WorkloadKind::Database, 5);
        let mut b = Workload::new(WorkloadKind::Database, 5);
        for _ in 0..40_000 {
            a.next();
            b.next();
        }
        assert_eq!(a.checkpoint(), b.checkpoint(), "same state, same bytes");
        assert_eq!(Workload::checkpoint_seed(&a.checkpoint()), Ok(5));
    }

    #[test]
    fn corrupt_checkpoints_are_rejected() {
        let mut wl = Workload::new(WorkloadKind::SpecJbb2000, 3);
        for _ in 0..10_000 {
            wl.next();
        }
        let good = wl.checkpoint();
        let cfg = WorkloadKind::SpecJbb2000.config();
        assert!(Workload::restore(&cfg, &good).is_ok());
        // Truncations at every prefix length parse-fail, never panic.
        for n in 0..good.len() {
            assert!(Workload::restore(&cfg, &good[..n]).is_err());
        }
        // Trailing garbage is rejected.
        let mut long = good.clone();
        long.push(0);
        assert!(Workload::restore(&cfg, &long).is_err());
        // Bad magic / version.
        let mut bad = good.clone();
        bad[0] ^= 0xff;
        assert!(Workload::restore(&cfg, &bad).is_err());
        let mut bad = good;
        bad[4] = 0xee;
        assert!(Workload::restore(&cfg, &bad).is_err());
    }

    #[test]
    fn pc_stays_in_code_regions() {
        let wl = Workload::new(WorkloadKind::SpecWeb99, 23);
        for i in wl.take(200_000) {
            let in_ring = i.pc >= layout::CODE_BASE
                && i.pc < layout::CODE_BASE + (WorkloadConfig::specweb99().ring_slots as u64) * 4;
            let in_cold = i.pc >= layout::COLD_CODE_BASE;
            assert!(in_ring || in_cold, "pc {:#x} outside code regions", i.pc);
        }
    }
}
