//! Shared materialized traces: generate once, replay everywhere.
//!
//! Every sweep point of a figure/table simulates the same `(kind, seed)`
//! workload, but streaming generation pays the full walker cost per run. A
//! [`TraceStore`] materializes each requested `(kind, seed)` stream once
//! into an immutable, column-oriented [`mlp_isa::TraceSoA`] snapshot and
//! hands out cheap [`SharedTrace`] handles, so N sweep points share one
//! generation pass *and* one decode into the structure-of-arrays layout the
//! simulator kernels run over (including the pre-classified
//! off-chip-candidate index — see [`mlp_isa::TraceSoA::candidates`]). The
//! store is sharded per trace: concurrent sweep workers materializing
//! *different* traces never serialize on each other, and workers asking for
//! the same trace block only while the first one generates it.
//!
//! Prefixes are stable: the cached columns are extended by continuing the
//! same generator instance, and `TraceSoA` is push-only, so the first `n`
//! cached instructions are always exactly the first `n` instructions of
//! `Workload::with_config(cfg, seed)` no matter how the cache grew. A
//! handle for a request of length `n` exposes exactly those `n`
//! instructions, which keeps every simulator run a pure function of
//! `(config, kind, seed, n)` — independent of cache state, thread count or
//! request interleaving.

use crate::{Workload, WorkloadKind};
use mlp_isa::{Inst, TraceSoA};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// An immutable, shareable prefix of a workload's instruction stream,
/// stored column-oriented.
#[derive(Clone)]
pub struct SharedTrace {
    soa: Arc<TraceSoA>,
    len: usize,
}

impl SharedTrace {
    /// The materialized columns. May hold more than [`SharedTrace::len`]
    /// instructions if the cache has grown; only indices below `len()`
    /// belong to this handle's window.
    pub fn soa(&self) -> &TraceSoA {
        &self.soa
    }

    /// Reconstructs instruction `i` of this window.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn get(&self, i: usize) -> Inst {
        assert!(i < self.len, "index beyond trace window");
        self.soa.get(i)
    }

    /// Reconstructs the whole window as a row-oriented vector (tests and
    /// trace-file export; the simulators read the columns directly).
    pub fn to_vec(&self) -> Vec<Inst> {
        (0..self.len).map(|i| self.soa.get(i)).collect()
    }

    /// Number of instructions in this trace.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A replay cursor positioned at the first instruction.
    pub fn cursor(&self) -> TraceCursor {
        TraceCursor {
            soa: Arc::clone(&self.soa),
            len: self.len,
            pos: 0,
        }
    }
}

/// A lightweight replaying reader over a [`SharedTrace`].
///
/// Implements `Iterator<Item = Inst>` and therefore
/// [`mlp_isa::TraceSource`]; cloning or re-creating cursors is O(1) and
/// never re-generates the trace. Each `next()` reconstructs one [`Inst`]
/// from the columns — row-oriented consumers (trace analyzers, the
/// runahead/SMT engines) pay the reconstruction, while the epoch and
/// cycle kernels bypass cursors entirely and read the columns in place.
#[derive(Clone)]
pub struct TraceCursor {
    soa: Arc<TraceSoA>,
    len: usize,
    pos: usize,
}

impl TraceCursor {
    /// Reset to the first instruction.
    pub fn rewind(&mut self) {
        self.pos = 0;
    }

    /// Instructions not yet consumed.
    pub fn remaining(&self) -> usize {
        self.len - self.pos
    }
}

impl Iterator for TraceCursor {
    type Item = Inst;

    fn next(&mut self) -> Option<Inst> {
        if self.pos < self.len {
            let i = self.soa.get(self.pos);
            self.pos += 1;
            Some(i)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining();
        (n, Some(n))
    }
}

/// One cached trace: the paused generator plus everything it has emitted.
struct Entry {
    generator: Workload,
    buf: TraceSoA,
    /// Immutable snapshot of `buf`, rebuilt lazily after growth.
    shared: Option<Arc<TraceSoA>>,
}

impl Entry {
    fn new(kind: WorkloadKind, seed: u64) -> Entry {
        Entry {
            generator: Workload::new(kind, seed),
            buf: TraceSoA::new(),
            shared: None,
        }
    }

    fn trace_of_len(&mut self, len: usize) -> SharedTrace {
        if self.buf.len() < len {
            let need = len - self.buf.len();
            for inst in self.generator.by_ref().take(need) {
                self.buf.push(&inst);
            }
            self.shared = None;
        }
        let soa = self
            .shared
            .get_or_insert_with(|| Arc::new(self.buf.clone()));
        SharedTrace {
            soa: Arc::clone(soa),
            len,
        }
    }
}

type EntryMap = HashMap<(WorkloadKind, u64), Arc<Mutex<Entry>>>;

/// A concurrent cache of materialized workload traces.
pub struct TraceStore {
    entries: Mutex<EntryMap>,
}

impl TraceStore {
    /// An empty store.
    pub fn new() -> TraceStore {
        TraceStore {
            entries: Mutex::new(HashMap::new()),
        }
    }

    /// The process-wide store used by the experiment runner.
    pub fn global() -> &'static TraceStore {
        static GLOBAL: OnceLock<TraceStore> = OnceLock::new();
        GLOBAL.get_or_init(TraceStore::new)
    }

    /// The first `len` instructions of `Workload::new(kind, seed)`,
    /// materialized (or re-used) and shared.
    pub fn trace(&self, kind: WorkloadKind, seed: u64, len: usize) -> SharedTrace {
        let cell = {
            let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
            Arc::clone(
                entries
                    .entry((kind, seed))
                    .or_insert_with(|| Arc::new(Mutex::new(Entry::new(kind, seed)))),
            )
        };
        let mut entry = cell.lock().unwrap_or_else(|e| e.into_inner());
        entry.trace_of_len(len)
    }

    /// Drop every cached trace (used to benchmark cold-vs-cached sweeps).
    /// Outstanding `SharedTrace`s stay valid; future requests regenerate.
    pub fn clear(&self) {
        self.entries
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
    }

    /// Total instructions currently materialized across all traces.
    pub fn cached_insts(&self) -> u64 {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        entries
            .values()
            .map(|c| c.lock().unwrap_or_else(|e| e.into_inner()).buf.len() as u64)
            .sum()
    }

    /// Number of distinct `(kind, seed)` traces cached.
    pub fn cached_traces(&self) -> usize {
        self.entries.lock().unwrap_or_else(|e| e.into_inner()).len()
    }
}

impl Default for TraceStore {
    fn default() -> Self {
        TraceStore::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlp_isa::TraceSource;

    #[test]
    fn cached_trace_matches_fresh_generation() {
        let store = TraceStore::new();
        let t = store.trace(WorkloadKind::Database, 42, 5_000);
        let fresh: Vec<Inst> = Workload::new(WorkloadKind::Database, 42)
            .take(5_000)
            .collect();
        assert_eq!(t.to_vec(), fresh);
    }

    #[test]
    fn growth_preserves_prefix() {
        let store = TraceStore::new();
        let short = store.trace(WorkloadKind::SpecJbb2000, 7, 1_000);
        let long = store.trace(WorkloadKind::SpecJbb2000, 7, 4_000);
        assert_eq!(&long.to_vec()[..1_000], short.to_vec().as_slice());
        let fresh: Vec<Inst> = Workload::new(WorkloadKind::SpecJbb2000, 7)
            .take(4_000)
            .collect();
        assert_eq!(long.to_vec(), fresh);
        // The short handle still replays its original window.
        assert_eq!(short.cursor().count(), 1_000);
    }

    #[test]
    fn cursor_replays_and_rewinds() {
        let store = TraceStore::new();
        let t = store.trace(WorkloadKind::SpecWeb99, 3, 2_000);
        let mut c = t.cursor();
        let first: Vec<Inst> = c.by_ref().take(100).collect();
        assert_eq!(c.remaining(), 1_900);
        c.rewind();
        let again: Vec<Inst> = c.by_ref().take(100).collect();
        assert_eq!(first, again);
        // TraceSource is available through the Iterator blanket impl.
        let mut c2 = t.cursor();
        assert_eq!(c2.take_insts(2_000).len(), 2_000);
        assert!(c2.next_inst().is_none());
    }

    #[test]
    fn distinct_seeds_and_kinds_do_not_alias() {
        let store = TraceStore::new();
        let a = store.trace(WorkloadKind::Database, 1, 500);
        let b = store.trace(WorkloadKind::Database, 2, 500);
        let c = store.trace(WorkloadKind::SpecWeb99, 1, 500);
        assert_ne!(a.to_vec(), b.to_vec());
        assert_ne!(a.to_vec(), c.to_vec());
        assert_eq!(store.cached_traces(), 3);
        assert_eq!(store.cached_insts(), 1_500);
    }

    #[test]
    fn clear_then_regenerate_is_identical() {
        let store = TraceStore::new();
        let a = store.trace(WorkloadKind::Database, 9, 1_000);
        let before: Vec<Inst> = a.to_vec();
        store.clear();
        assert_eq!(store.cached_traces(), 0);
        let b = store.trace(WorkloadKind::Database, 9, 1_000);
        assert_eq!(b.to_vec(), before);
        // The pre-clear handle remains readable.
        assert_eq!(a.to_vec(), before);
    }

    #[test]
    fn candidate_index_matches_naive_scan() {
        let store = TraceStore::new();
        let t = store.trace(WorkloadKind::Database, 42, 3_000);
        let naive: Vec<u32> = t
            .to_vec()
            .iter()
            .enumerate()
            .filter(|(_, i)| i.kind.reads_memory())
            .map(|(i, _)| i as u32)
            .collect();
        // The shared SoA may extend past this window; compare the prefix.
        let within: Vec<u32> = t
            .soa()
            .candidates()
            .iter()
            .copied()
            .take_while(|&i| (i as usize) < t.len())
            .collect();
        assert_eq!(within, naive);
    }

    #[test]
    fn concurrent_requests_agree() {
        let store = TraceStore::new();
        let outputs =
            mlp_par_stub::run_threads(8, || store.trace(WorkloadKind::SpecJbb2000, 5, 10_000));
        let fresh: Vec<Inst> = Workload::new(WorkloadKind::SpecJbb2000, 5)
            .take(10_000)
            .collect();
        for t in outputs {
            assert_eq!(t.to_vec(), fresh);
        }
    }

    /// Tiny scoped-thread helper so this crate need not depend on mlp-par.
    mod mlp_par_stub {
        pub fn run_threads<R: Send>(n: usize, f: impl Fn() -> R + Sync) -> Vec<R> {
            std::thread::scope(|s| {
                let handles: Vec<_> = (0..n).map(|_| s.spawn(&f)).collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            })
        }
    }
}
