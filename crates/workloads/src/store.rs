//! Shared materialized traces: generate once, replay everywhere.
//!
//! Every sweep point of a figure/table simulates the same `(kind, seed)`
//! workload, but streaming generation pays the full walker cost per run. A
//! [`TraceStore`] materializes each requested `(kind, seed)` stream once
//! and hands out cheap [`SharedTrace`] handles, so N sweep points share one
//! generation pass. The store is sharded per trace: concurrent sweep
//! workers materializing *different* traces never serialize on each other,
//! and workers asking for the same trace block only while the first one
//! generates it.
//!
//! # Tiers
//!
//! Small traces live in memory as an immutable, column-oriented
//! [`mlp_isa::TraceSoA`] snapshot (including the pre-classified
//! off-chip-candidate index — see [`mlp_isa::TraceSoA::candidates`]), and
//! simulators run directly over the shared columns.
//!
//! Traces whose projected footprint exceeds the byte budget
//! (`MLP_TRACE_CACHE_BYTES`, default unlimited; `0` forces every trace to
//! disk) **spill**: the stream is written once through
//! [`mlp_isa::chunked::ChunkedWriter`] into a v2 chunked trace file under
//! the cache directory (`MLP_TRACE_CACHE_DIR` or a per-user temp
//! directory; see [`TraceStore::set_cache_dir`]), alongside a `.ckpt`
//! sidecar holding the paused generator's [`Workload::checkpoint`]. Spilled
//! handles replay by streaming fixed-size chunks back from disk
//! ([`SharedTrace::chunks`]), so peak memory is bounded by the chunk size
//! instead of the trace length; a later, longer request *appends* to the
//! file by resuming the checkpointed generator rather than regenerating.
//! Spilled files persist across processes: a new run finding a valid
//! `(file, sidecar)` pair adopts it instead of regenerating.
//!
//! Prefixes are stable in both tiers: cached columns and spilled files are
//! extended by continuing the same generator instance, so the first `n`
//! cached instructions are always exactly the first `n` instructions of
//! `Workload::with_config(cfg, seed)` no matter how the cache grew. A
//! handle for a request of length `n` exposes exactly those `n`
//! instructions, which keeps every simulator run a pure function of
//! `(config, kind, seed, n)` — independent of cache state, tier, thread
//! count or request interleaving.

use crate::{Workload, WorkloadKind};
use mlp_isa::chunked::{read_chunk_at, read_index, ChunkIndex, ChunkedWriter, DEFAULT_CHUNK_INSTS};
use mlp_isa::tracefile::TraceFileError;
use mlp_isa::{Inst, TraceSoA};
use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{BufReader, Write as _};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};

/// Projected resident bytes per instruction, used for the spill decision
/// (43 bytes of fixed column content plus the amortized candidate index).
const SPILL_EST_BYTES_PER_INST: u64 = 45;

/// A trace spilled to a v2 chunked file: the path plus its chunk index.
///
/// The index is an in-memory snapshot; the file may later grow (appends
/// only ever add frames past the indexed ones and rewrite the footer), so
/// snapshots taken before an append remain valid for their own window.
struct SpilledTrace {
    path: PathBuf,
    index: ChunkIndex,
}

impl SpilledTrace {
    /// Reads chunk ordinal `k` back from disk.
    ///
    /// # Panics
    ///
    /// Panics if the cache file has been deleted or corrupted underneath
    /// the store (the store itself only ever reads back files it wrote
    /// and verified).
    fn read_chunk(&self, k: usize) -> TraceSoA {
        let file = File::open(&self.path)
            .unwrap_or_else(|e| panic!("trace cache {} vanished: {e}", self.path.display()));
        let mut r = BufReader::new(file);
        read_chunk_at(&mut r, &self.index, k)
            .unwrap_or_else(|e| panic!("trace cache {} corrupt: {e}", self.path.display()))
    }
}

#[derive(Clone)]
enum Backing {
    Memory(Arc<TraceSoA>),
    Spilled(Arc<SpilledTrace>),
}

/// An immutable, shareable prefix of a workload's instruction stream.
///
/// Backed either by shared in-memory columns or by a spilled chunked
/// trace file (see the [module docs](self) for the tiering rules);
/// [`SharedTrace::is_spilled`] tells the two apart. Column-kernel callers
/// use [`SharedTrace::soa`] on the memory tier and
/// [`SharedTrace::chunks`] on the spilled tier; row-oriented consumers use
/// [`SharedTrace::cursor`], which works identically on both.
#[derive(Clone)]
pub struct SharedTrace {
    backing: Backing,
    len: usize,
}

impl SharedTrace {
    /// Whether this trace lives in a spilled chunk file rather than in
    /// memory.
    pub fn is_spilled(&self) -> bool {
        matches!(self.backing, Backing::Spilled(_))
    }

    /// The materialized columns of a memory-tier trace. May hold more
    /// than [`SharedTrace::len`] instructions if the cache has grown;
    /// only indices below `len()` belong to this handle's window.
    ///
    /// # Panics
    ///
    /// Panics on a spilled trace, whose columns are never resident all at
    /// once — branch on [`SharedTrace::is_spilled`] and stream
    /// [`SharedTrace::chunks`] instead.
    pub fn soa(&self) -> &TraceSoA {
        match &self.backing {
            Backing::Memory(soa) => soa,
            Backing::Spilled(sp) => panic!(
                "trace is spilled to {}; stream SharedTrace::chunks() instead of soa()",
                sp.path.display()
            ),
        }
    }

    /// Streams this window as a sequence of bounded [`TraceSoA`] chunks
    /// (an [`mlp_isa::SoAChunks`] via the iterator blanket impl). The
    /// spilled tier reads chunks back from disk; the memory tier slices
    /// the shared columns, so both tiers feed the same chunk-driven
    /// simulator entry points.
    pub fn chunks(&self) -> TraceChunks {
        TraceChunks {
            backing: self.backing.clone(),
            len: self.len,
            pos: 0,
        }
    }

    /// Reconstructs instruction `i` of this window.
    ///
    /// On the spilled tier this decodes the chunk containing `i` per
    /// call; iterate a [`SharedTrace::cursor`] for sequential access.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn get(&self, i: usize) -> Inst {
        assert!(i < self.len, "index beyond trace window");
        match &self.backing {
            Backing::Memory(soa) => soa.get(i),
            Backing::Spilled(sp) => {
                let (k, start) = sp.index.locate(i as u64).expect("index bounds-checked");
                sp.read_chunk(k).get(i - start as usize)
            }
        }
    }

    /// Reconstructs the whole window as a row-oriented vector (tests and
    /// trace-file export; the simulators read columns or chunks directly).
    pub fn to_vec(&self) -> Vec<Inst> {
        self.cursor().collect()
    }

    /// Number of instructions in this trace.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A replay cursor positioned at the first instruction.
    pub fn cursor(&self) -> TraceCursor {
        TraceCursor {
            backing: self.backing.clone(),
            chunk: TraceSoA::new(),
            chunk_start: 0,
            len: self.len,
            pos: 0,
        }
    }
}

/// Streaming chunk iterator over a [`SharedTrace`] window
/// (see [`SharedTrace::chunks`]).
pub struct TraceChunks {
    backing: Backing,
    len: usize,
    pos: usize,
}

impl Iterator for TraceChunks {
    type Item = TraceSoA;

    fn next(&mut self) -> Option<TraceSoA> {
        if self.pos >= self.len {
            return None;
        }
        let chunk = match &self.backing {
            Backing::Memory(soa) => {
                let end = (self.pos + DEFAULT_CHUNK_INSTS as usize).min(self.len);
                let mut chunk = TraceSoA::new();
                for i in self.pos..end {
                    chunk.push(&soa.get(i));
                }
                chunk
            }
            Backing::Spilled(sp) => {
                let (k, start) = sp
                    .index
                    .locate(self.pos as u64)
                    .expect("pos < len <= total");
                let mut chunk = sp.read_chunk(k);
                debug_assert_eq!(start as usize, self.pos, "chunks are read whole");
                if start as usize + chunk.len() > self.len {
                    // Final chunk overhangs the window: clip it.
                    let keep = self.len - start as usize;
                    let mut clipped = TraceSoA::new();
                    for i in 0..keep {
                        clipped.push(&chunk.get(i));
                    }
                    chunk = clipped;
                }
                chunk
            }
        };
        self.pos += chunk.len();
        Some(chunk)
    }
}

/// A lightweight replaying reader over a [`SharedTrace`].
///
/// Implements `Iterator<Item = Inst>` and therefore
/// [`mlp_isa::TraceSource`]; cloning or re-creating cursors never
/// re-generates the trace. Each `next()` reconstructs one [`Inst`] —
/// from the shared columns on the memory tier, or from a resident window
/// of one decoded chunk on the spilled tier (sequential reads decode each
/// chunk once). Row-oriented consumers (trace analyzers, the
/// runahead/SMT engines) pay the reconstruction, while the epoch and
/// cycle kernels bypass cursors entirely and read columns or chunks.
#[derive(Clone)]
pub struct TraceCursor {
    backing: Backing,
    /// Resident decoded chunk (spilled tier only; empty on the memory
    /// tier and before the first read).
    chunk: TraceSoA,
    chunk_start: usize,
    len: usize,
    pos: usize,
}

impl TraceCursor {
    /// Reset to the first instruction.
    pub fn rewind(&mut self) {
        self.pos = 0;
    }

    /// Instructions not yet consumed.
    pub fn remaining(&self) -> usize {
        self.len - self.pos
    }
}

impl Iterator for TraceCursor {
    type Item = Inst;

    fn next(&mut self) -> Option<Inst> {
        if self.pos >= self.len {
            return None;
        }
        let inst = match &self.backing {
            Backing::Memory(soa) => soa.get(self.pos),
            Backing::Spilled(sp) => {
                if self.pos < self.chunk_start || self.pos >= self.chunk_start + self.chunk.len() {
                    let (k, start) = sp.index.locate(self.pos as u64).expect("pos < total");
                    self.chunk = sp.read_chunk(k);
                    self.chunk_start = start as usize;
                }
                self.chunk.get(self.pos - self.chunk_start)
            }
        };
        self.pos += 1;
        Some(inst)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining();
        (n, Some(n))
    }
}

/// One cached trace: the paused generator plus everything it has emitted
/// (in the column buffer, or in a spilled chunk file, never both).
struct Entry {
    kind: WorkloadKind,
    seed: u64,
    generator: Workload,
    buf: TraceSoA,
    /// Immutable snapshot of `buf`, rebuilt lazily after growth.
    shared: Option<Arc<TraceSoA>>,
    /// Set once the trace has spilled; `buf` is empty from then on and
    /// the generator is positioned at the end of the file.
    spilled: Option<Arc<SpilledTrace>>,
}

impl Entry {
    fn new(kind: WorkloadKind, seed: u64) -> Entry {
        Entry {
            kind,
            seed,
            generator: Workload::new(kind, seed),
            buf: TraceSoA::new(),
            shared: None,
            spilled: None,
        }
    }

    fn memory_trace_of_len(&mut self, len: usize) -> SharedTrace {
        if self.buf.len() < len {
            let need = len - self.buf.len();
            for inst in self.generator.by_ref().take(need) {
                self.buf.push(&inst);
            }
            self.shared = None;
        }
        let soa = self
            .shared
            .get_or_insert_with(|| Arc::new(self.buf.clone()));
        SharedTrace {
            backing: Backing::Memory(Arc::clone(soa)),
            len,
        }
    }

    /// Moves this entry to the spilled tier with at least `len`
    /// instructions on disk, reusing a valid existing `(file, sidecar)`
    /// pair when one is present. Callers must hold the [`SpillLock`] for
    /// the file: adoption + append and fresh writes both mutate the
    /// shared on-disk pair.
    fn spill(
        &mut self,
        kind: WorkloadKind,
        seed: u64,
        len: usize,
        dir: &Path,
    ) -> Result<(), TraceFileError> {
        fs::create_dir_all(dir)?;
        let path = spill_path(dir, kind, seed);
        let ckpt = path.with_extension("ckpt");
        if let Some((generator, index)) = try_adopt(&path, &ckpt, kind, seed) {
            self.generator = generator;
            self.buf = TraceSoA::new();
            self.shared = None;
            self.spilled = Some(Arc::new(SpilledTrace {
                path: path.clone(),
                index,
            }));
            return self.extend_spill(len);
        }
        // Fresh spill: flush what is already materialized, then continue
        // the same generator straight into the file. Written to a temp
        // name and renamed so a crash never leaves a half-written file
        // under the adopted name.
        let tmp = path.with_extension("mlp2.tmp");
        let mut w = ChunkedWriter::new(File::create(&tmp)?, DEFAULT_CHUNK_INSTS)?;
        for i in 0..self.buf.len() {
            w.push(&self.buf.get(i))?;
        }
        let need = len - self.buf.len();
        for inst in self.generator.by_ref().take(need) {
            w.push(&inst)?;
        }
        let index = w.finish()?;
        fs::rename(&tmp, &path)?;
        write_sidecar(&ckpt, &self.generator.checkpoint())?;
        self.buf = TraceSoA::new();
        self.shared = None;
        self.spilled = Some(Arc::new(SpilledTrace { path, index }));
        Ok(())
    }

    /// Appends to the spilled file until it holds `len` instructions,
    /// resuming the paused generator. Handles holding the pre-append
    /// index stay valid: appending only adds frames and rewrites the
    /// footer, never moves existing chunks.
    ///
    /// Callers must hold the [`SpillLock`] for the file: appends rewrite
    /// the footer in place, so two writers interleaving would corrupt it.
    fn extend_spill(&mut self, len: usize) -> Result<(), TraceFileError> {
        let sp = self.spilled.as_ref().expect("extend requires a spill");
        if sp.index.total_insts >= len as u64 {
            return Ok(());
        }
        let path = sp.path.clone();
        let file = OpenOptions::new().read(true).write(true).open(&path)?;
        let mut w = ChunkedWriter::resume(file)?;
        if w.total_insts() != self.generator.emitted() {
            // Another process appended since this entry last synced with
            // the file (its sidecar moved with it). Re-adopt the on-disk
            // (file, sidecar) pair so we resume from the true tail
            // instead of appending stale instructions over it.
            drop(w);
            let ckpt = path.with_extension("ckpt");
            let (generator, index) =
                try_adopt(&path, &ckpt, self.kind, self.seed).ok_or_else(|| {
                    TraceFileError::Io(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        "spill file advanced but its sidecar no longer validates",
                    ))
                })?;
            self.generator = generator;
            self.spilled = Some(Arc::new(SpilledTrace {
                path: path.clone(),
                index,
            }));
            if self.spilled.as_ref().expect("just set").index.total_insts >= len as u64 {
                return Ok(());
            }
            let file = OpenOptions::new().read(true).write(true).open(&path)?;
            w = ChunkedWriter::resume(file)?;
        }
        let need = len as u64 - w.total_insts();
        for inst in self.generator.by_ref().take(need as usize) {
            w.push(&inst)?;
        }
        let index = w.finish()?;
        write_sidecar(&path.with_extension("ckpt"), &self.generator.checkpoint())?;
        self.spilled = Some(Arc::new(SpilledTrace { path, index }));
        Ok(())
    }

    fn spilled_trace(&self, len: usize) -> SharedTrace {
        let sp = self.spilled.as_ref().expect("spilled");
        debug_assert!(len as u64 <= sp.index.total_insts);
        SharedTrace {
            backing: Backing::Spilled(Arc::clone(sp)),
            len,
        }
    }
}

fn spill_path(dir: &Path, kind: WorkloadKind, seed: u64) -> PathBuf {
    dir.join(format!("{kind:?}-{seed}.mlp2").to_lowercase())
}

/// Advisory writer lock for one spill file: a `.lock` sidecar created
/// with `O_EXCL` holding the owner's pid, removed on drop.
///
/// Spill files are shared across processes (adoption), and appends
/// rewrite the footer in place, so two writers interleaving would
/// corrupt the file. The lock serializes *writers* only — reads of
/// already-written frames need no lock because appends never move
/// existing chunks. A lock whose owner pid is no longer alive (per
/// `/proc`) is stale — e.g. a crashed run — and is stolen; on platforms
/// without `/proc` liveness is unknowable, so locks are honoured until
/// their owner removes them.
struct SpillLock {
    path: PathBuf,
}

impl SpillLock {
    /// Tries to take the writer lock for the spill file at `path`.
    /// Returns `None` on contention (another live process owns it) or
    /// when the lock file cannot be created at all.
    fn acquire(path: &Path) -> Option<SpillLock> {
        let lock_path = path.with_extension("lock");
        // At most one steal attempt: first pass may find a stale lock,
        // second pass must win the O_EXCL race or give up.
        for _ in 0..2 {
            match OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&lock_path)
            {
                Ok(mut f) => {
                    let _ = write!(f, "{}", std::process::id());
                    let _ = f.flush();
                    return Some(SpillLock { path: lock_path });
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    if lock_is_stale(&lock_path) {
                        let _ = fs::remove_file(&lock_path);
                        continue;
                    }
                    return None;
                }
                Err(_) => return None,
            }
        }
        None
    }
}

impl Drop for SpillLock {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

/// Whether an existing lock file's owner is provably dead.
///
/// Empty/unreadable content means the owner is between `O_EXCL` and
/// writing its pid — treat as live. Non-numeric content is garbage (not
/// written by us) — treat as stale. A numeric pid is probed via `/proc`;
/// without `/proc` we assume live (conservative: fall back to memory
/// rather than corrupt a file something may be writing).
fn lock_is_stale(lock_path: &Path) -> bool {
    let Ok(text) = fs::read_to_string(lock_path) else {
        return false;
    };
    let trimmed = text.trim();
    if trimmed.is_empty() {
        return false;
    }
    let Ok(pid) = trimmed.parse::<u32>() else {
        return true;
    };
    if pid == std::process::id() {
        return false;
    }
    let proc_root = Path::new("/proc");
    if !proc_root.exists() {
        return false;
    }
    !proc_root.join(pid.to_string()).exists()
}

/// Writes a checkpoint sidecar atomically (temp + rename).
fn write_sidecar(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("ckpt.tmp");
    fs::write(&tmp, bytes)?;
    fs::rename(&tmp, path)
}

/// Validates an existing spill `(file, sidecar)` pair for `(kind, seed)`
/// and returns the resumed generator plus the file's index, or `None` if
/// anything is missing, corrupt, or inconsistent (in which case the
/// caller regenerates from scratch).
fn try_adopt(
    path: &Path,
    ckpt: &Path,
    kind: WorkloadKind,
    seed: u64,
) -> Option<(Workload, ChunkIndex)> {
    let bytes = fs::read(ckpt).ok()?;
    if Workload::checkpoint_seed(&bytes) != Ok(seed) {
        return None;
    }
    let generator = Workload::restore(&kind.config(), &bytes).ok()?;
    let mut file = File::open(path).ok()?;
    let index = read_index(&mut file).ok()?;
    if index.total_insts != generator.emitted() {
        return None;
    }
    Some((generator, index))
}

/// The store's spill policy: where spilled files go and how many resident
/// bytes a single trace may project before it spills.
#[derive(Clone)]
struct Policy {
    dir: PathBuf,
    budget: u64,
}

impl Policy {
    fn from_env() -> Policy {
        let budget = std::env::var("MLP_TRACE_CACHE_BYTES")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(u64::MAX);
        let dir = std::env::var_os("MLP_TRACE_CACHE_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| std::env::temp_dir().join("mlp-trace-cache"));
        Policy { dir, budget }
    }

    fn should_spill(&self, len: usize) -> bool {
        (len as u64).saturating_mul(SPILL_EST_BYTES_PER_INST) > self.budget
    }
}

type EntryMap = HashMap<(WorkloadKind, u64), Arc<Mutex<Entry>>>;

/// A concurrent, tiered cache of materialized workload traces (see the
/// [module docs](self)).
pub struct TraceStore {
    entries: Mutex<EntryMap>,
    policy: Mutex<Policy>,
}

impl TraceStore {
    /// An empty store, with the spill policy read from
    /// `MLP_TRACE_CACHE_BYTES` / `MLP_TRACE_CACHE_DIR`.
    pub fn new() -> TraceStore {
        TraceStore {
            entries: Mutex::new(HashMap::new()),
            policy: Mutex::new(Policy::from_env()),
        }
    }

    /// The process-wide store used by the experiment runner.
    pub fn global() -> &'static TraceStore {
        static GLOBAL: OnceLock<TraceStore> = OnceLock::new();
        GLOBAL.get_or_init(TraceStore::new)
    }

    /// Redirects future spills to `dir` (the experiments CLI's
    /// `--trace-cache`). Already-spilled entries keep their files.
    pub fn set_cache_dir(&self, dir: impl Into<PathBuf>) {
        self.policy.lock().unwrap_or_else(|e| e.into_inner()).dir = dir.into();
    }

    /// Overrides the per-trace resident byte budget (tests; normally set
    /// via `MLP_TRACE_CACHE_BYTES`). `0` forces every trace to spill,
    /// `u64::MAX` never spills.
    pub fn set_cache_bytes(&self, budget: u64) {
        self.policy.lock().unwrap_or_else(|e| e.into_inner()).budget = budget;
    }

    /// The directory future spills write into.
    pub fn cache_dir(&self) -> PathBuf {
        self.policy
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .dir
            .clone()
    }

    /// The first `len` instructions of `Workload::new(kind, seed)`,
    /// materialized (or re-used) and shared. Traces projected to exceed
    /// the byte budget spill to disk; a spill failure (unwritable cache
    /// dir, disk full) falls back to the memory tier so results never
    /// depend on spill success.
    pub fn trace(&self, kind: WorkloadKind, seed: u64, len: usize) -> SharedTrace {
        let cell = {
            let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
            Arc::clone(
                entries
                    .entry((kind, seed))
                    .or_insert_with(|| Arc::new(Mutex::new(Entry::new(kind, seed)))),
            )
        };
        let policy = self
            .policy
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        let mut entry = cell.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(sp) = &entry.spilled {
            // Reads of already-written frames need no lock: appends only
            // ever add frames past the snapshotted index.
            if sp.index.total_insts >= len as u64 {
                return entry.spilled_trace(len);
            }
            let path = sp.path.clone();
            let Some(_lock) = SpillLock::acquire(&path) else {
                // Another live process is appending to this file right
                // now. Serve this one request from the memory tier (a
                // throwaway regeneration) instead of racing the writer;
                // the entry keeps its spill and re-syncs next request.
                return Entry::new(kind, seed).memory_trace_of_len(len);
            };
            if entry.extend_spill(len).is_ok() {
                return entry.spilled_trace(len);
            }
            // Extension failed (e.g. file deleted mid-run): regenerate in
            // memory from scratch for correctness.
            let mut fresh = Entry::new(kind, seed);
            let t = fresh.memory_trace_of_len(len);
            *entry = fresh;
            return t;
        }
        if policy.should_spill(len) && fs::create_dir_all(&policy.dir).is_ok() {
            let path = spill_path(&policy.dir, kind, seed);
            if let Some(_lock) = SpillLock::acquire(&path) {
                if entry.spill(kind, seed, len, &policy.dir).is_ok() {
                    return entry.spilled_trace(len);
                }
            }
            // Contention or spill failure: memory tier, never racing the
            // other writer. A later request retries the spill.
        }
        entry.memory_trace_of_len(len)
    }

    /// Drop every cached trace (used to benchmark cold-vs-cached sweeps),
    /// deleting spilled files and their checkpoint sidecars.
    /// Outstanding `SharedTrace`s on the memory tier stay valid; spilled
    /// handles must not outlive the clear. Future requests regenerate.
    pub fn clear(&self) {
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        for cell in entries.values() {
            let entry = cell.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(sp) = &entry.spilled {
                let _ = fs::remove_file(&sp.path);
                let _ = fs::remove_file(sp.path.with_extension("ckpt"));
                let _ = fs::remove_file(sp.path.with_extension("lock"));
            }
        }
        entries.clear();
    }

    /// Total instructions currently materialized across all traces, in
    /// both tiers.
    pub fn cached_insts(&self) -> u64 {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        entries
            .values()
            .map(|c| {
                let e = c.lock().unwrap_or_else(|e| e.into_inner());
                e.buf.len() as u64 + e.spilled.as_ref().map_or(0, |sp| sp.index.total_insts)
            })
            .sum()
    }

    /// Resident memory occupied by cached column content, in bytes —
    /// exact column-content bytes (43 per instruction plus 4 per
    /// candidate-index entry), excluding allocator slack. Spilled traces
    /// contribute nothing here; see [`TraceStore::spilled_bytes`].
    pub fn cached_bytes(&self) -> u64 {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        entries
            .values()
            .map(|c| {
                c.lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .buf
                    .approx_bytes()
            })
            .sum()
    }

    /// Total on-disk bytes of spilled trace files (compressed v2 size,
    /// not the decoded footprint).
    pub fn spilled_bytes(&self) -> u64 {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        entries
            .values()
            .filter_map(|c| {
                let e = c.lock().unwrap_or_else(|e| e.into_inner());
                let sp = e.spilled.as_ref()?;
                fs::metadata(&sp.path).ok().map(|m| m.len())
            })
            .sum()
    }

    /// Number of distinct `(kind, seed)` traces cached.
    pub fn cached_traces(&self) -> usize {
        self.entries.lock().unwrap_or_else(|e| e.into_inner()).len()
    }
}

impl Default for TraceStore {
    fn default() -> Self {
        TraceStore::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlp_isa::TraceSource;

    /// A store spilling everything into a fresh temp dir, plus the dir
    /// (removed on drop).
    fn spilling_store(tag: &str) -> (TraceStore, TempDir) {
        let dir = TempDir::new(tag);
        let store = TraceStore::new();
        store.set_cache_dir(&dir.0);
        store.set_cache_bytes(0);
        (store, dir)
    }

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let d =
                std::env::temp_dir().join(format!("mlp-store-test-{tag}-{}", std::process::id()));
            let _ = fs::remove_dir_all(&d);
            TempDir(d)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn cached_trace_matches_fresh_generation() {
        let store = TraceStore::new();
        let t = store.trace(WorkloadKind::Database, 42, 5_000);
        let fresh: Vec<Inst> = Workload::new(WorkloadKind::Database, 42)
            .take(5_000)
            .collect();
        assert_eq!(t.to_vec(), fresh);
    }

    #[test]
    fn growth_preserves_prefix() {
        let store = TraceStore::new();
        let short = store.trace(WorkloadKind::SpecJbb2000, 7, 1_000);
        let long = store.trace(WorkloadKind::SpecJbb2000, 7, 4_000);
        assert_eq!(&long.to_vec()[..1_000], short.to_vec().as_slice());
        let fresh: Vec<Inst> = Workload::new(WorkloadKind::SpecJbb2000, 7)
            .take(4_000)
            .collect();
        assert_eq!(long.to_vec(), fresh);
        // The short handle still replays its original window.
        assert_eq!(short.cursor().count(), 1_000);
    }

    #[test]
    fn cursor_replays_and_rewinds() {
        let store = TraceStore::new();
        let t = store.trace(WorkloadKind::SpecWeb99, 3, 2_000);
        let mut c = t.cursor();
        let first: Vec<Inst> = c.by_ref().take(100).collect();
        assert_eq!(c.remaining(), 1_900);
        c.rewind();
        let again: Vec<Inst> = c.by_ref().take(100).collect();
        assert_eq!(first, again);
        // TraceSource is available through the Iterator blanket impl.
        let mut c2 = t.cursor();
        assert_eq!(c2.take_insts(2_000).len(), 2_000);
        assert!(c2.next_inst().is_none());
    }

    #[test]
    fn distinct_seeds_and_kinds_do_not_alias() {
        let store = TraceStore::new();
        let a = store.trace(WorkloadKind::Database, 1, 500);
        let b = store.trace(WorkloadKind::Database, 2, 500);
        let c = store.trace(WorkloadKind::SpecWeb99, 1, 500);
        assert_ne!(a.to_vec(), b.to_vec());
        assert_ne!(a.to_vec(), c.to_vec());
        assert_eq!(store.cached_traces(), 3);
        assert_eq!(store.cached_insts(), 1_500);
    }

    #[test]
    fn clear_then_regenerate_is_identical() {
        let store = TraceStore::new();
        let a = store.trace(WorkloadKind::Database, 9, 1_000);
        let before: Vec<Inst> = a.to_vec();
        store.clear();
        assert_eq!(store.cached_traces(), 0);
        let b = store.trace(WorkloadKind::Database, 9, 1_000);
        assert_eq!(b.to_vec(), before);
        // The pre-clear handle remains readable.
        assert_eq!(a.to_vec(), before);
    }

    #[test]
    fn candidate_index_matches_naive_scan() {
        let store = TraceStore::new();
        let t = store.trace(WorkloadKind::Database, 42, 3_000);
        let naive: Vec<u32> = t
            .to_vec()
            .iter()
            .enumerate()
            .filter(|(_, i)| i.kind.reads_memory())
            .map(|(i, _)| i as u32)
            .collect();
        // The shared SoA may extend past this window; compare the prefix.
        let within: Vec<u32> = t
            .soa()
            .candidates()
            .iter()
            .copied()
            .take_while(|&i| (i as usize) < t.len())
            .collect();
        assert_eq!(within, naive);
    }

    #[test]
    fn concurrent_requests_agree() {
        let store = TraceStore::new();
        let outputs =
            mlp_par_stub::run_threads(8, || store.trace(WorkloadKind::SpecJbb2000, 5, 10_000));
        let fresh: Vec<Inst> = Workload::new(WorkloadKind::SpecJbb2000, 5)
            .take(10_000)
            .collect();
        for t in outputs {
            assert_eq!(t.to_vec(), fresh);
        }
    }

    #[test]
    fn spilled_trace_replays_identically() {
        let (store, _dir) = spilling_store("replay");
        let n = 200_000;
        let t = store.trace(WorkloadKind::Database, 42, n);
        assert!(t.is_spilled());
        assert_eq!(t.len(), n);
        // Spilling holds no columns resident.
        assert_eq!(store.cached_bytes(), 0);
        assert!(store.spilled_bytes() > 0);
        let fresh: Vec<Inst> = Workload::new(WorkloadKind::Database, 42).take(n).collect();
        assert_eq!(t.to_vec(), fresh);
        // Chunk stream covers the window exactly, in order.
        let mut seen = 0usize;
        for chunk in t.chunks() {
            for i in 0..chunk.len() {
                assert_eq!(chunk.get(i), fresh[seen + i]);
            }
            seen += chunk.len();
        }
        assert_eq!(seen, n);
    }

    #[test]
    fn spilled_growth_appends_and_preserves_prefix() {
        let (store, _dir) = spilling_store("grow");
        let short = store.trace(WorkloadKind::SpecWeb99, 7, 70_000);
        let bytes_short = store.spilled_bytes();
        let long = store.trace(WorkloadKind::SpecWeb99, 7, 150_000);
        assert!(short.is_spilled() && long.is_spilled());
        assert!(store.spilled_bytes() > bytes_short, "append grows the file");
        let fresh: Vec<Inst> = Workload::new(WorkloadKind::SpecWeb99, 7)
            .take(150_000)
            .collect();
        assert_eq!(long.to_vec(), fresh);
        // The pre-append handle still replays its own window.
        assert_eq!(short.to_vec(), &fresh[..70_000]);
    }

    #[test]
    fn spill_files_are_adopted_across_stores() {
        let dir = TempDir::new("adopt");
        let a = TraceStore::new();
        a.set_cache_dir(&dir.0);
        a.set_cache_bytes(0);
        let first = a.trace(WorkloadKind::SpecJbb2000, 11, 60_000);
        // A second store (fresh process, same cache dir) adopts the file
        // and can extend it without regenerating from zero.
        let b = TraceStore::new();
        b.set_cache_dir(&dir.0);
        b.set_cache_bytes(0);
        let again = b.trace(WorkloadKind::SpecJbb2000, 11, 60_000);
        assert_eq!(again.to_vec(), first.to_vec());
        let longer = b.trace(WorkloadKind::SpecJbb2000, 11, 90_000);
        let fresh: Vec<Inst> = Workload::new(WorkloadKind::SpecJbb2000, 11)
            .take(90_000)
            .collect();
        assert_eq!(longer.to_vec(), fresh);
    }

    #[test]
    fn clear_removes_spilled_files() {
        let (store, dir) = spilling_store("clear");
        store.trace(WorkloadKind::Database, 3, 80_000);
        let entries = fs::read_dir(&dir.0).unwrap().count();
        assert!(entries >= 2, "file + sidecar on disk");
        store.clear();
        assert_eq!(fs::read_dir(&dir.0).unwrap().count(), 0);
        assert_eq!(store.spilled_bytes(), 0);
        // Regeneration after clear is identical.
        let t = store.trace(WorkloadKind::Database, 3, 1_000);
        let fresh: Vec<Inst> = Workload::new(WorkloadKind::Database, 3)
            .take(1_000)
            .collect();
        assert_eq!(t.to_vec(), fresh);
    }

    #[test]
    fn corrupt_sidecar_triggers_regeneration() {
        let (store, dir) = spilling_store("corrupt");
        let t = store.trace(WorkloadKind::Database, 5, 60_000);
        let want = t.to_vec();
        drop(store);
        // Corrupt the sidecar; a new store must regenerate, not adopt.
        let ckpt = spill_path(&dir.0, WorkloadKind::Database, 5).with_extension("ckpt");
        fs::write(&ckpt, b"garbage").unwrap();
        let store = TraceStore::new();
        store.set_cache_dir(&dir.0);
        store.set_cache_bytes(0);
        let again = store.trace(WorkloadKind::Database, 5, 60_000);
        assert_eq!(again.to_vec(), want);
    }

    #[test]
    fn contended_fresh_spill_falls_back_to_memory() {
        let (store, dir) = spilling_store("contend");
        fs::create_dir_all(&dir.0).unwrap();
        let path = spill_path(&dir.0, WorkloadKind::Database, 21);
        // Simulate a live foreign writer: the owner pid (ours) is alive.
        fs::write(path.with_extension("lock"), std::process::id().to_string()).unwrap();
        let t = store.trace(WorkloadKind::Database, 21, 60_000);
        assert!(!t.is_spilled(), "contended spill must fall back to memory");
        let fresh: Vec<Inst> = Workload::new(WorkloadKind::Database, 21)
            .take(60_000)
            .collect();
        assert_eq!(t.to_vec(), fresh);
        // The "other process" releases the lock: the next request spills.
        fs::remove_file(path.with_extension("lock")).unwrap();
        let t2 = store.trace(WorkloadKind::Database, 21, 60_000);
        assert!(t2.is_spilled());
        assert_eq!(t2.to_vec(), fresh);
        assert!(
            !path.with_extension("lock").exists(),
            "the writer lock is released after the spill"
        );
    }

    #[test]
    fn contended_extension_falls_back_without_clobbering_spill() {
        let (store, dir) = spilling_store("contend-ext");
        let short = store.trace(WorkloadKind::SpecWeb99, 13, 60_000);
        assert!(short.is_spilled());
        let path = spill_path(&dir.0, WorkloadKind::SpecWeb99, 13);
        fs::write(path.with_extension("lock"), std::process::id().to_string()).unwrap();
        let long = store.trace(WorkloadKind::SpecWeb99, 13, 120_000);
        assert!(!long.is_spilled(), "contended append serves from memory");
        let fresh: Vec<Inst> = Workload::new(WorkloadKind::SpecWeb99, 13)
            .take(120_000)
            .collect();
        assert_eq!(long.to_vec(), fresh);
        // The spilled prefix is still served lock-free in the meantime.
        let prefix = store.trace(WorkloadKind::SpecWeb99, 13, 50_000);
        assert!(prefix.is_spilled());
        assert_eq!(prefix.to_vec(), &fresh[..50_000]);
        // Lock released: the append goes through and stays correct.
        fs::remove_file(path.with_extension("lock")).unwrap();
        let long2 = store.trace(WorkloadKind::SpecWeb99, 13, 120_000);
        assert!(long2.is_spilled());
        assert_eq!(long2.to_vec(), fresh);
    }

    #[test]
    fn stale_lock_from_dead_owner_is_stolen() {
        let (store, dir) = spilling_store("stale");
        fs::create_dir_all(&dir.0).unwrap();
        let path = spill_path(&dir.0, WorkloadKind::Database, 31);
        // Far above any real pid_max: provably dead owner.
        fs::write(path.with_extension("lock"), "999999999").unwrap();
        let t = store.trace(WorkloadKind::Database, 31, 60_000);
        assert!(t.is_spilled(), "a dead owner's lock must be stolen");
        let fresh: Vec<Inst> = Workload::new(WorkloadKind::Database, 31)
            .take(60_000)
            .collect();
        assert_eq!(t.to_vec(), fresh);
        assert!(!path.with_extension("lock").exists());
    }

    #[test]
    fn foreign_append_is_resynced_not_overwritten() {
        // Two stores (standing in for two processes) share one cache dir.
        let dir = TempDir::new("resync");
        let a = TraceStore::new();
        a.set_cache_dir(&dir.0);
        a.set_cache_bytes(0);
        let b = TraceStore::new();
        b.set_cache_dir(&dir.0);
        b.set_cache_bytes(0);
        let _a1 = a.trace(WorkloadKind::SpecJbb2000, 17, 60_000);
        // b adopts the file at 60k and appends to 90k; a's generator is
        // now 30k instructions behind the file tail.
        let _b1 = b.trace(WorkloadKind::SpecJbb2000, 17, 90_000);
        // a extending to 120k must resync from the sidecar and append
        // after the true tail, not write stale instructions over it.
        let t = a.trace(WorkloadKind::SpecJbb2000, 17, 120_000);
        assert!(t.is_spilled());
        let fresh: Vec<Inst> = Workload::new(WorkloadKind::SpecJbb2000, 17)
            .take(120_000)
            .collect();
        assert_eq!(t.to_vec(), fresh);
    }

    #[test]
    fn cached_bytes_tracks_column_content() {
        let store = TraceStore::new();
        assert_eq!(store.cached_bytes(), 0);
        let t = store.trace(WorkloadKind::Database, 8, 2_000);
        let expect = t.soa().approx_bytes();
        assert_eq!(store.cached_bytes(), expect);
        assert!(expect >= 2_000 * 43, "43 fixed bytes per instruction");
        store.clear();
        assert_eq!(store.cached_bytes(), 0);
    }

    /// Tiny scoped-thread helper so this crate need not depend on mlp-par.
    mod mlp_par_stub {
        pub fn run_threads<R: Send>(n: usize, f: impl Fn() -> R + Sync) -> Vec<R> {
            std::thread::scope(|s| {
                let handles: Vec<_> = (0..n).map(|_| s.spawn(&f)).collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            })
        }
    }
}
