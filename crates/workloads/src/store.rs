//! Shared materialized traces: generate once, replay everywhere.
//!
//! Every sweep point of a figure/table simulates the same `(kind, seed)`
//! workload, but streaming generation pays the full walker cost per run. A
//! [`TraceStore`] materializes each requested `(kind, seed)` stream once
//! into an immutable `Arc<[Inst]>` and hands out cheap replay
//! [`TraceCursor`]s, so N sweep points share one generation pass. The store
//! is sharded per trace: concurrent sweep workers materializing *different*
//! traces never serialize on each other, and workers asking for the same
//! trace block only while the first one generates it.
//!
//! Prefixes are stable: the cached buffer is extended by continuing the same
//! generator instance, so the first `n` cached instructions are always
//! exactly the first `n` instructions of `Workload::with_config(cfg, seed)`
//! no matter how the cache grew. A cursor for a request of length `n`
//! replays exactly those `n` instructions, which keeps every simulator run a
//! pure function of `(config, kind, seed, n)` — independent of cache state,
//! thread count or request interleaving.

use crate::{Workload, WorkloadKind};
use mlp_isa::Inst;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// An immutable, shareable prefix of a workload's instruction stream.
#[derive(Clone)]
pub struct SharedTrace {
    insts: Arc<[Inst]>,
    len: usize,
}

impl SharedTrace {
    /// The materialized instructions.
    pub fn as_slice(&self) -> &[Inst] {
        &self.insts[..self.len]
    }

    /// Number of instructions in this trace.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A replay cursor positioned at the first instruction.
    pub fn cursor(&self) -> TraceCursor {
        TraceCursor {
            insts: Arc::clone(&self.insts),
            len: self.len,
            pos: 0,
        }
    }
}

/// A lightweight replaying reader over a [`SharedTrace`].
///
/// Implements `Iterator<Item = Inst>` and therefore
/// [`mlp_isa::TraceSource`]; cloning or re-creating cursors is O(1) and
/// never re-generates the trace.
#[derive(Clone)]
pub struct TraceCursor {
    insts: Arc<[Inst]>,
    len: usize,
    pos: usize,
}

impl TraceCursor {
    /// Reset to the first instruction.
    pub fn rewind(&mut self) {
        self.pos = 0;
    }

    /// Instructions not yet consumed.
    pub fn remaining(&self) -> usize {
        self.len - self.pos
    }
}

impl Iterator for TraceCursor {
    type Item = Inst;

    fn next(&mut self) -> Option<Inst> {
        if self.pos < self.len {
            let i = self.insts[self.pos];
            self.pos += 1;
            Some(i)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining();
        (n, Some(n))
    }
}

/// One cached trace: the paused generator plus everything it has emitted.
struct Entry {
    generator: Workload,
    buf: Vec<Inst>,
    /// Immutable snapshot of `buf`, rebuilt lazily after growth.
    shared: Option<Arc<[Inst]>>,
}

impl Entry {
    fn new(kind: WorkloadKind, seed: u64) -> Entry {
        Entry {
            generator: Workload::new(kind, seed),
            buf: Vec::new(),
            shared: None,
        }
    }

    fn trace_of_len(&mut self, len: usize) -> SharedTrace {
        if self.buf.len() < len {
            let need = len - self.buf.len();
            self.buf.reserve(need);
            self.buf.extend(self.generator.by_ref().take(need));
            self.shared = None;
        }
        let insts = self
            .shared
            .get_or_insert_with(|| Arc::from(self.buf.as_slice()));
        SharedTrace {
            insts: Arc::clone(insts),
            len,
        }
    }
}

type EntryMap = HashMap<(WorkloadKind, u64), Arc<Mutex<Entry>>>;

/// A concurrent cache of materialized workload traces.
pub struct TraceStore {
    entries: Mutex<EntryMap>,
}

impl TraceStore {
    /// An empty store.
    pub fn new() -> TraceStore {
        TraceStore {
            entries: Mutex::new(HashMap::new()),
        }
    }

    /// The process-wide store used by the experiment runner.
    pub fn global() -> &'static TraceStore {
        static GLOBAL: OnceLock<TraceStore> = OnceLock::new();
        GLOBAL.get_or_init(TraceStore::new)
    }

    /// The first `len` instructions of `Workload::new(kind, seed)`,
    /// materialized (or re-used) and shared.
    pub fn trace(&self, kind: WorkloadKind, seed: u64, len: usize) -> SharedTrace {
        let cell = {
            let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
            Arc::clone(
                entries
                    .entry((kind, seed))
                    .or_insert_with(|| Arc::new(Mutex::new(Entry::new(kind, seed)))),
            )
        };
        let mut entry = cell.lock().unwrap_or_else(|e| e.into_inner());
        entry.trace_of_len(len)
    }

    /// Drop every cached trace (used to benchmark cold-vs-cached sweeps).
    /// Outstanding `SharedTrace`s stay valid; future requests regenerate.
    pub fn clear(&self) {
        self.entries
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
    }

    /// Total instructions currently materialized across all traces.
    pub fn cached_insts(&self) -> u64 {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        entries
            .values()
            .map(|c| c.lock().unwrap_or_else(|e| e.into_inner()).buf.len() as u64)
            .sum()
    }

    /// Number of distinct `(kind, seed)` traces cached.
    pub fn cached_traces(&self) -> usize {
        self.entries.lock().unwrap_or_else(|e| e.into_inner()).len()
    }
}

impl Default for TraceStore {
    fn default() -> Self {
        TraceStore::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlp_isa::TraceSource;

    #[test]
    fn cached_trace_matches_fresh_generation() {
        let store = TraceStore::new();
        let t = store.trace(WorkloadKind::Database, 42, 5_000);
        let fresh: Vec<Inst> = Workload::new(WorkloadKind::Database, 42)
            .take(5_000)
            .collect();
        assert_eq!(t.as_slice(), fresh.as_slice());
    }

    #[test]
    fn growth_preserves_prefix() {
        let store = TraceStore::new();
        let short = store.trace(WorkloadKind::SpecJbb2000, 7, 1_000);
        let long = store.trace(WorkloadKind::SpecJbb2000, 7, 4_000);
        assert_eq!(&long.as_slice()[..1_000], short.as_slice());
        let fresh: Vec<Inst> = Workload::new(WorkloadKind::SpecJbb2000, 7)
            .take(4_000)
            .collect();
        assert_eq!(long.as_slice(), fresh.as_slice());
        // The short handle still replays its original window.
        assert_eq!(short.cursor().count(), 1_000);
    }

    #[test]
    fn cursor_replays_and_rewinds() {
        let store = TraceStore::new();
        let t = store.trace(WorkloadKind::SpecWeb99, 3, 2_000);
        let mut c = t.cursor();
        let first: Vec<Inst> = c.by_ref().take(100).collect();
        assert_eq!(c.remaining(), 1_900);
        c.rewind();
        let again: Vec<Inst> = c.by_ref().take(100).collect();
        assert_eq!(first, again);
        // TraceSource is available through the Iterator blanket impl.
        let mut c2 = t.cursor();
        assert_eq!(c2.take_insts(2_000).len(), 2_000);
        assert!(c2.next_inst().is_none());
    }

    #[test]
    fn distinct_seeds_and_kinds_do_not_alias() {
        let store = TraceStore::new();
        let a = store.trace(WorkloadKind::Database, 1, 500);
        let b = store.trace(WorkloadKind::Database, 2, 500);
        let c = store.trace(WorkloadKind::SpecWeb99, 1, 500);
        assert_ne!(a.as_slice(), b.as_slice());
        assert_ne!(a.as_slice(), c.as_slice());
        assert_eq!(store.cached_traces(), 3);
        assert_eq!(store.cached_insts(), 1_500);
    }

    #[test]
    fn clear_then_regenerate_is_identical() {
        let store = TraceStore::new();
        let a = store.trace(WorkloadKind::Database, 9, 1_000);
        let before: Vec<Inst> = a.as_slice().to_vec();
        store.clear();
        assert_eq!(store.cached_traces(), 0);
        let b = store.trace(WorkloadKind::Database, 9, 1_000);
        assert_eq!(b.as_slice(), before.as_slice());
        // The pre-clear handle remains readable.
        assert_eq!(a.as_slice(), before.as_slice());
    }

    #[test]
    fn concurrent_requests_agree() {
        let store = TraceStore::new();
        let outputs =
            mlp_par_stub::run_threads(8, || store.trace(WorkloadKind::SpecJbb2000, 5, 10_000));
        let fresh: Vec<Inst> = Workload::new(WorkloadKind::SpecJbb2000, 5)
            .take(10_000)
            .collect();
        for t in outputs {
            assert_eq!(t.as_slice(), fresh.as_slice());
        }
    }

    /// Tiny scoped-thread helper so this crate need not depend on mlp-par.
    mod mlp_par_stub {
        pub fn run_threads<R: Send>(n: usize, f: impl Fn() -> R + Sync) -> Vec<R> {
            std::thread::scope(|s| {
                let handles: Vec<_> = (0..n).map(|_| s.spawn(&f)).collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            })
        }
    }
}
