use std::fmt;

/// The three commercial workloads of the paper's evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// The paper's database workload: highest miss rate (0.84 per 100
    /// instructions), many dependent (pointer-chasing) misses, significant
    /// instruction-fetch misses, moderate serializing activity.
    Database,
    /// SPECjbb2000-like: moderate miss rate (0.19), heavy use of CASA for
    /// Java object locking (~0.6% of dynamic instructions), negligible
    /// I-fetch misses, strongly clustered misses.
    SpecJbb2000,
    /// SPECweb99-like: low miss rate (0.09), extremely clustered misses,
    /// a significant number of useful software prefetches, noticeable
    /// I-fetch misses.
    SpecWeb99,
}

impl WorkloadKind {
    /// All three workloads, in the paper's presentation order.
    pub const ALL: [WorkloadKind; 3] = [
        WorkloadKind::Database,
        WorkloadKind::SpecJbb2000,
        WorkloadKind::SpecWeb99,
    ];

    /// The display name used in tables.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::Database => "Database",
            WorkloadKind::SpecJbb2000 => "SPECjbb2000",
            WorkloadKind::SpecWeb99 => "SPECweb99",
        }
    }

    /// The calibrated generator configuration for this workload.
    pub fn config(self) -> WorkloadConfig {
        match self {
            WorkloadKind::Database => WorkloadConfig::database(),
            WorkloadKind::SpecJbb2000 => WorkloadConfig::specjbb2000(),
            WorkloadKind::SpecWeb99 => WorkloadConfig::specweb99(),
        }
    }
}

impl fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Full parameterization of a synthetic workload.
///
/// All probabilities are per *ring slot* unless stated otherwise. The
/// presets ([`WorkloadConfig::database`] etc.) are calibrated against the
/// paper's published statistics; the fields are public so studies can
/// explore the neighbourhood (e.g. "what if the database had no
/// serializing instructions?").
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadConfig {
    // --- program shape -------------------------------------------------
    /// Number of instruction slots in the hot code ring.
    pub ring_slots: usize,
    /// A conditional-branch site every `branch_every` slots.
    pub branch_every: usize,
    /// Fraction of branch sites with essentially random outcomes (the
    /// rest are strongly biased and predictable).
    pub branch_random_frac: f64,
    /// Taken probability of a biased branch site.
    pub branch_bias: f64,
    /// Maximum slots skipped by a taken branch.
    pub branch_max_skip: usize,
    /// Fraction of biased branch sites biased toward *taken* (the rest are
    /// biased not-taken, like forward branches in real code).
    pub branch_taken_site_frac: f64,
    /// Probability that a slot is a call to a hot function.
    pub hot_call_frac: f64,
    /// A return site every `ret_every` slots (bounds hot function length).
    pub ret_every: usize,

    // --- miss zones ----------------------------------------------------
    /// Slots between consecutive miss-zone starts (must divide
    /// `ring_slots`).
    pub zone_period: usize,
    /// Length of each miss zone in slots.
    pub zone_len: usize,
    /// Average slots between cold-load sites inside a zone.
    pub zone_gap: usize,
    /// Probability that a cold-load site chases the pointer chain
    /// (dependent miss) rather than issuing an independent miss.
    pub chain_frac: f64,
    /// Probability that a zone slot after a cold load is a store whose
    /// address depends on the latest missing value (the `Dep store`
    /// inhibitor of Figure 5).
    pub dep_store_frac: f64,
    /// Probability that a zone branch site's condition depends on the
    /// latest missing value (making its misprediction *unresolvable*).
    pub branch_dep_miss_frac: f64,
    /// Slots between a cold load and the consumer of its value (real code
    /// uses loaded values promptly; this is what limits in-order MLP).
    pub consume_gap: usize,
    /// Probability that an in-zone slot stores to a cold line (a store
    /// fill that leaves the chip — the subject of the store-MLP study).
    pub cold_store_frac: f64,
    /// A CASA site every this many slots *inside* miss zones (0 = none).
    /// Models locking around shared-object access: SPECjbb2000's CASAs
    /// sit amid its misses, which is why serialization caps its MLP.
    pub zone_casa_every: usize,

    // --- pointer chase -------------------------------------------------
    /// Number of persistent linked lists.
    pub chase_lists: usize,
    /// Nodes per list. Total list bytes should exceed the L2 so re-walks
    /// miss again.
    pub chase_nodes_per_list: usize,

    // --- software prefetch ---------------------------------------------
    /// Fraction of a zone's independent cold loads covered by software
    /// prefetches placed ahead of the zone (SPECweb99 behaviour).
    pub prefetch_coverage: f64,
    /// Slots between the prefetch block and its zone.
    pub prefetch_lead: usize,

    // --- instruction-fetch misses ---------------------------------------
    /// Probability that a slot is a call into cold (never-reused) code.
    pub icold_frac: f64,
    /// Mean instructions executed per cold-code excursion.
    pub icold_len_mean: usize,

    // --- serializing instructions ---------------------------------------
    /// Probability that a slot is a CASA (atomic, serializing).
    pub casa_frac: f64,
    /// Probability that a slot is a MEMBAR (serializing).
    pub membar_frac: f64,

    // --- filler mix ------------------------------------------------------
    /// Probability that a filler slot is a hot (on-chip) load.
    pub hot_load_frac: f64,
    /// Probability that a filler slot is a hot store.
    pub hot_store_frac: f64,

    // --- data regions ----------------------------------------------------
    /// Bytes of hot data (should fit comfortably in the L2).
    pub hot_data_bytes: u64,
    /// Bytes of the cold region sampled by independent misses.
    pub cold_data_bytes: u64,

    // --- values ----------------------------------------------------------
    /// Probability that an independent missing load repeats its per-site
    /// sticky value (drives last-value-predictor coverage, Table 6).
    pub value_stability: f64,
}

impl WorkloadConfig {
    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if the zone period does not divide the ring, if the zone
    /// does not fit its period, or if any probability is outside `[0,1]`.
    pub fn validate(&self) {
        assert!(self.ring_slots > 0, "ring must be non-empty");
        assert!(
            self.ring_slots.is_multiple_of(self.zone_period),
            "zone period must divide the ring size"
        );
        assert!(
            self.zone_len + self.prefetch_lead < self.zone_period,
            "zone plus prefetch lead must fit in the period"
        );
        assert!(self.branch_every >= 2, "branch sites need spacing >= 2");
        assert!(self.zone_gap >= 1, "zone gap must be >= 1");
        assert!(
            self.consume_gap >= 1 && self.consume_gap < self.zone_gap.max(2),
            "consume gap must sit between a cold load and the next site"
        );
        for (name, p) in [
            ("branch_random_frac", self.branch_random_frac),
            ("branch_taken_site_frac", self.branch_taken_site_frac),
            ("branch_bias", self.branch_bias),
            ("hot_call_frac", self.hot_call_frac),
            ("chain_frac", self.chain_frac),
            ("dep_store_frac", self.dep_store_frac),
            ("cold_store_frac", self.cold_store_frac),
            ("branch_dep_miss_frac", self.branch_dep_miss_frac),
            ("prefetch_coverage", self.prefetch_coverage),
            ("icold_frac", self.icold_frac),
            ("casa_frac", self.casa_frac),
            ("membar_frac", self.membar_frac),
            ("hot_load_frac", self.hot_load_frac),
            ("hot_store_frac", self.hot_store_frac),
            ("value_stability", self.value_stability),
        ] {
            assert!((0.0..=1.0).contains(&p), "{name} must be in [0,1], got {p}");
        }
    }

    /// Calibrated database-workload preset (see crate docs and
    /// `EXPERIMENTS.md` for achieved-vs-target statistics).
    pub fn database() -> WorkloadConfig {
        WorkloadConfig {
            ring_slots: 16_384,
            branch_every: 7,
            branch_random_frac: 0.04,
            branch_bias: 0.95,
            branch_taken_site_frac: 0.3,
            branch_max_skip: 4,
            hot_call_frac: 0.004,
            ret_every: 97,
            zone_period: 1_024,
            zone_len: 256,
            zone_gap: 30,
            chain_frac: 0.44,
            dep_store_frac: 0.06,
            branch_dep_miss_frac: 0.12,
            consume_gap: 3,
            cold_store_frac: 0.03,
            zone_casa_every: 0,
            chase_lists: 48,
            chase_nodes_per_list: 1_024,
            prefetch_coverage: 0.0,
            prefetch_lead: 64,
            icold_frac: 0.0005,
            icold_len_mean: 40,
            casa_frac: 0.0015,
            membar_frac: 0.0003,
            hot_load_frac: 0.22,
            hot_store_frac: 0.10,
            hot_data_bytes: 512 * 1024,
            cold_data_bytes: 1 << 30,
            value_stability: 0.85,
        }
    }

    /// Calibrated SPECjbb2000-like preset.
    pub fn specjbb2000() -> WorkloadConfig {
        WorkloadConfig {
            ring_slots: 16_384,
            branch_every: 7,
            branch_random_frac: 0.03,
            branch_bias: 0.95,
            branch_taken_site_frac: 0.3,
            branch_max_skip: 4,
            hot_call_frac: 0.005,
            ret_every: 97,
            zone_period: 8_192,
            zone_len: 192,
            zone_gap: 9,
            chain_frac: 0.40,
            dep_store_frac: 0.05,
            branch_dep_miss_frac: 0.08,
            consume_gap: 3,
            cold_store_frac: 0.02,
            zone_casa_every: 6,
            chase_lists: 40,
            chase_nodes_per_list: 1_024,
            prefetch_coverage: 0.0,
            prefetch_lead: 8,
            icold_frac: 0.0,
            icold_len_mean: 40,
            casa_frac: 0.005,
            membar_frac: 0.0005,
            hot_load_frac: 0.24,
            hot_store_frac: 0.11,
            hot_data_bytes: 256 * 1024,
            cold_data_bytes: 1 << 30,
            value_stability: 0.42,
        }
    }

    /// Calibrated SPECweb99-like preset.
    pub fn specweb99() -> WorkloadConfig {
        WorkloadConfig {
            ring_slots: 16_384,
            branch_every: 7,
            branch_random_frac: 0.025,
            branch_bias: 0.95,
            branch_taken_site_frac: 0.3,
            branch_max_skip: 4,
            hot_call_frac: 0.004,
            ret_every: 97,
            zone_period: 16_384,
            zone_len: 256,
            zone_gap: 30,
            chain_frac: 0.45,
            dep_store_frac: 0.03,
            branch_dep_miss_frac: 0.08,
            consume_gap: 2,
            cold_store_frac: 0.01,
            zone_casa_every: 0,
            chase_lists: 40,
            chase_nodes_per_list: 1_024,
            prefetch_coverage: 0.20,
            prefetch_lead: 36,
            icold_frac: 0.00005,
            icold_len_mean: 40,
            casa_frac: 0.0004,
            membar_frac: 0.0002,
            hot_load_frac: 0.23,
            hot_store_frac: 0.09,
            hot_data_bytes: 256 * 1024,
            cold_data_bytes: 1 << 30,
            value_stability: 0.80,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        WorkloadConfig::database().validate();
        WorkloadConfig::specjbb2000().validate();
        WorkloadConfig::specweb99().validate();
    }

    #[test]
    fn kinds_produce_their_presets() {
        assert_eq!(WorkloadKind::Database.config(), WorkloadConfig::database());
        assert_eq!(
            WorkloadKind::SpecJbb2000.config(),
            WorkloadConfig::specjbb2000()
        );
        assert_eq!(
            WorkloadKind::SpecWeb99.config(),
            WorkloadConfig::specweb99()
        );
    }

    #[test]
    fn jbb_casa_rate_matches_paper() {
        // The paper: CASA is more than 0.6% of SPECjbb2000's dynamic
        // instruction count. The preset supplies it as diffuse lock sites
        // plus dense locking inside miss zones.
        let c = WorkloadConfig::specjbb2000();
        let zone_frac = c.zone_len as f64 / c.zone_period as f64;
        let effective = c.casa_frac + zone_frac / c.zone_casa_every as f64;
        assert!(effective >= 0.006, "effective CASA rate {effective}");
    }

    #[test]
    #[should_panic(expected = "zone period")]
    fn bad_zone_period_rejected() {
        let mut c = WorkloadConfig::database();
        c.zone_period = 1000; // does not divide 65536
        c.validate();
    }

    #[test]
    #[should_panic(expected = "in [0,1]")]
    fn bad_probability_rejected() {
        let mut c = WorkloadConfig::database();
        c.chain_frac = 1.5;
        c.validate();
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(WorkloadKind::Database.name(), "Database");
        assert_eq!(WorkloadKind::SpecJbb2000.name(), "SPECjbb2000");
        assert_eq!(WorkloadKind::SpecWeb99.name(), "SPECweb99");
        assert_eq!(format!("{}", WorkloadKind::Database), "Database");
    }
}
