use crate::WorkloadConfig;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Virtual-address map of the synthetic process image.
pub(crate) mod layout {
    /// Base of the hot code ring.
    pub const CODE_BASE: u64 = 0x0010_0000;
    /// Base of the cold (never-reused) code region for excursions.
    pub const COLD_CODE_BASE: u64 = 0x8000_0000;
    /// Size of the cold code region.
    pub const COLD_CODE_BYTES: u64 = 1 << 30;
    /// Base of the hot data region.
    pub const HOT_DATA_BASE: u64 = 0x1000_0000;
    /// Base of the cold data region (independent misses).
    pub const COLD_DATA_BASE: u64 = 0x4000_0000;
    /// Base of the pointer-chase heap.
    pub const CHASE_BASE: u64 = 0x2_0000_0000;
    /// Span of the pointer-chase heap.
    pub const CHASE_BYTES: u64 = 1 << 30;
    /// Base of the lock-word region used by CASA sites.
    pub const LOCK_BASE: u64 = 0x3000_0000;
}

/// A static instruction slot of the program ring.
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) enum Slot {
    /// Register-to-register filler.
    Alu,
    /// Load from the hot (L2-resident) data region.
    HotLoad,
    /// Store to the hot data region.
    HotStore,
    /// Load from cold memory: the off-chip miss generator.
    ColdLoad {
        /// Chases the persistent linked lists (dependent miss) if true;
        /// independent random cold line otherwise.
        chain: bool,
        /// Which miss zone this site belongs to.
        zone: u32,
    },
    /// Store whose address depends on the most recent missing value.
    DepStore,
    /// Store to a cold line: an off-chip store fill (store-MLP study).
    ColdStore,
    /// Consumer of the most recent missing value (real code uses loaded
    /// values promptly; this limits in-order MLP).
    Consume,
    /// Software prefetch feeding the given zone's independent loads.
    Prefetch {
        /// Zone whose loads this prefetch covers.
        zone: u32,
    },
    /// Conditional branch site.
    Branch {
        /// Outcome behaviour of the site.
        behavior: BranchBehavior,
        /// Ring slots skipped when taken.
        skip: u16,
        /// Condition depends on the most recent missing value.
        dep_miss: bool,
    },
    /// Call to a hot function at the given ring index.
    HotCall {
        /// Ring index of the callee entry.
        target: u32,
    },
    /// Return site (pops the walker's call stack).
    Ret,
    /// Call into cold code (instruction-fetch miss generator).
    ColdCall,
    /// Atomic compare-and-swap on a lock word (serializing).
    Casa,
    /// Memory barrier (serializing).
    Membar,
}

/// Outcome behaviour of a conditional-branch site.
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) enum BranchBehavior {
    /// Data-dependent, essentially random outcome (50/50) — the source of
    /// mispredictions, including the *unresolvable* ones on `dep_miss`
    /// sites.
    Random,
    /// Loop-like deterministic pattern: the biased direction except every
    /// `period`-th visit. History-based predictors learn these, as they
    /// do real loop branches.
    Pattern {
        /// Visits per direction flip.
        period: u16,
        /// Whether the common direction is taken.
        mostly_taken: bool,
    },
}

/// SplitMix64: a stable per-site hash so that slot roles are a pure
/// function of `(seed, index, salt)`.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn site_hash(seed: u64, idx: usize, salt: u64) -> u64 {
    splitmix64(seed ^ (idx as u64).wrapping_mul(0x0100_0000_01b3) ^ salt.wrapping_mul(0x9e37))
}

fn site_unit(seed: u64, idx: usize, salt: u64) -> f64 {
    (site_hash(seed, idx, salt) >> 11) as f64 / (1u64 << 53) as f64
}

/// The static synthetic program: slot roles, pointer-chase heap, and the
/// address-space layout. Built deterministically from `(config, seed)`.
#[derive(Clone, Debug)]
pub(crate) struct Program {
    /// The build seed (recorded so checkpoints can rebuild the program).
    pub(crate) seed: u64,
    pub(crate) slots: Vec<Slot>,
    /// Flattened pointer-chase node addresses (line-aligned, persistent).
    pub(crate) chase_nodes: Vec<u64>,
    pub(crate) cfg: WorkloadConfig,
}

impl Program {
    pub(crate) fn build(cfg: &WorkloadConfig, seed: u64) -> Program {
        cfg.validate();
        let n = cfg.ring_slots;

        let mut slots = Vec::with_capacity(n);
        for idx in 0..n {
            slots.push(Self::classify(cfg, seed, idx));
        }
        Self::place_consumers_and_prefetches(cfg, &mut slots);

        // Persistent pointer-chase heap: random distinct-ish lines across a
        // heap far larger than the L2 so re-walks miss again.
        let mut rng = SmallRng::seed_from_u64(splitmix64(seed ^ 0xc4a5));
        let total_nodes = cfg.chase_lists * cfg.chase_nodes_per_list;
        let chase_lines = layout::CHASE_BYTES / mlp_isa::LINE_BYTES;
        let chase_nodes = (0..total_nodes)
            .map(|_| layout::CHASE_BASE + rng.gen_range(0..chase_lines) * mlp_isa::LINE_BYTES)
            .collect();

        Program {
            seed,
            slots,
            chase_nodes,
            cfg: cfg.clone(),
        }
    }

    fn classify(cfg: &WorkloadConfig, seed: u64, idx: usize) -> Slot {
        let p = cfg.zone_period;
        let zone = (idx / p) as u32;
        let zone_off = idx % p;
        let in_zone = zone_off < cfg.zone_len;

        // Structural sites take precedence so predictors see stable code.
        if idx % cfg.ret_every == cfg.ret_every - 1 {
            return Slot::Ret;
        }
        if idx % cfg.branch_every == cfg.branch_every - 1 {
            let random_site = site_unit(seed, idx, 1) < cfg.branch_random_frac;
            let dep_miss = in_zone && site_unit(seed, idx, 3) < cfg.branch_dep_miss_frac;
            // Branches on just-loaded data are inherently unpredictable —
            // that is what makes their mispredictions *unresolvable*. All
            // other sites behave like loop branches: deterministic
            // patterns that a history-based predictor learns.
            let behavior = if random_site || dep_miss {
                BranchBehavior::Random
            } else {
                BranchBehavior::Pattern {
                    period: 8 + (site_hash(seed, idx, 10) % 24) as u16,
                    mostly_taken: site_unit(seed, idx, 8) < cfg.branch_taken_site_frac,
                }
            };
            let skip = 1 + (site_hash(seed, idx, 2) as usize % cfg.branch_max_skip) as u16;
            return Slot::Branch {
                behavior,
                skip,
                dep_miss,
            };
        }
        if in_zone {
            if zone_off.is_multiple_of(cfg.zone_gap) {
                let chain = site_unit(seed, idx, 4) < cfg.chain_frac;
                return Slot::ColdLoad { chain, zone };
            }
            if cfg.zone_casa_every > 0 && zone_off % cfg.zone_casa_every == cfg.zone_casa_every - 1
            {
                return Slot::Casa;
            }
            if site_unit(seed, idx, 5) < cfg.dep_store_frac {
                return Slot::DepStore;
            }
            if site_unit(seed, idx, 11) < cfg.cold_store_frac {
                return Slot::ColdStore;
            }
        }

        // Stochastic filler roles (per-site, stable).
        let u = site_unit(seed, idx, 6);
        let mut acc = cfg.icold_frac;
        if u < acc {
            return Slot::ColdCall;
        }
        acc += cfg.casa_frac;
        if u < acc {
            return Slot::Casa;
        }
        acc += cfg.membar_frac;
        if u < acc {
            return Slot::Membar;
        }
        acc += cfg.hot_call_frac;
        if u < acc {
            let target = site_hash(seed, idx, 7) as usize % cfg.ring_slots;
            return Slot::HotCall {
                target: target as u32,
            };
        }
        acc += cfg.hot_load_frac;
        if u < acc {
            return Slot::HotLoad;
        }
        acc += cfg.hot_store_frac;
        if u < acc {
            return Slot::HotStore;
        }
        Slot::Alu
    }

    /// Second pass: pair every cold load with a nearby consumer of its
    /// value, and cover a fraction of the *independent* cold loads with a
    /// software prefetch a few slots ahead. Only plain filler slots are
    /// repurposed so the structural schedule stays intact.
    fn place_consumers_and_prefetches(cfg: &WorkloadConfig, slots: &mut [Slot]) {
        let n = slots.len();
        let replaceable = |s: &Slot| matches!(s, Slot::Alu | Slot::HotLoad | Slot::HotStore);
        let cold_sites: Vec<(usize, bool)> = slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match s {
                Slot::ColdLoad { chain, .. } => Some((i, *chain)),
                _ => None,
            })
            .collect();
        let mut indep_per_zone: Vec<usize> = vec![0; n / cfg.zone_period];
        for &(site, chain) in &cold_sites {
            // Consumer: a few slots after the load (first filler slot at
            // or past `consume_gap`, so nearly every miss has a prompt
            // consumer even when the preferred slot is structural).
            for d in cfg.consume_gap..cfg.consume_gap + 4 {
                let c = (site + d) % n;
                if replaceable(&slots[c]) {
                    slots[c] = Slot::Consume;
                    break;
                }
            }
            if !chain {
                indep_per_zone[site / cfg.zone_period] += 1;
            }
        }
        // Prefetch coverage applies to independent loads only (a chased
        // pointer's address is unknown ahead of time); the per-zone count
        // is deterministic so small zones still get their share.
        let covered_per_zone: Vec<usize> = indep_per_zone
            .iter()
            .map(|&indep| (cfg.prefetch_coverage * indep as f64).ceil() as usize)
            .collect();
        // Prefetches are issued in a burst just ahead of the miss cluster
        // they cover (as SPECweb99's software prefetching does), so they
        // overlap each other and the cluster's first demand miss even on
        // an in-order core.
        for (z, &count) in covered_per_zone.iter().enumerate() {
            let zone_start = z * cfg.zone_period;
            let mut placed = 0;
            for back in 1..=cfg.prefetch_lead {
                if placed >= count {
                    break;
                }
                let p = (zone_start + n - back) % n;
                if replaceable(&slots[p]) {
                    slots[p] = Slot::Prefetch { zone: z as u32 };
                    placed += 1;
                }
            }
        }
    }

    /// Program counter of a ring slot.
    #[inline]
    pub(crate) fn pc_of(&self, idx: usize) -> u64 {
        layout::CODE_BASE + (idx as u64) * 4
    }

    /// Number of ring slots.
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn program() -> Program {
        Program::build(&WorkloadConfig::database(), 7)
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = Program::build(&WorkloadConfig::database(), 7);
        let b = Program::build(&WorkloadConfig::database(), 7);
        assert_eq!(a.slots, b.slots);
        assert_eq!(a.chase_nodes, b.chase_nodes);
    }

    #[test]
    fn different_seed_differs() {
        let a = Program::build(&WorkloadConfig::database(), 7);
        let b = Program::build(&WorkloadConfig::database(), 8);
        assert_ne!(a.chase_nodes, b.chase_nodes);
    }

    #[test]
    fn branch_sites_on_schedule() {
        let p = program();
        let cfg = WorkloadConfig::database();
        let mut branches = 0;
        for (idx, s) in p.slots.iter().enumerate() {
            if matches!(s, Slot::Branch { .. }) {
                branches += 1;
                assert_eq!(idx % cfg.branch_every, cfg.branch_every - 1);
            }
        }
        assert!(branches > 0);
    }

    #[test]
    fn zones_contain_cold_loads() {
        let p = program();
        let cfg = WorkloadConfig::database();
        let in_zone_cold = p
            .slots
            .iter()
            .enumerate()
            .filter(|(idx, s)| {
                matches!(s, Slot::ColdLoad { .. }) && idx % cfg.zone_period < cfg.zone_len
            })
            .count();
        let out_zone_cold = p
            .slots
            .iter()
            .enumerate()
            .filter(|(idx, s)| {
                matches!(s, Slot::ColdLoad { .. }) && idx % cfg.zone_period >= cfg.zone_len
            })
            .count();
        assert!(in_zone_cold > 0);
        assert_eq!(out_zone_cold, 0, "cold loads only live in zones");
    }

    #[test]
    fn chain_fraction_roughly_respected() {
        let p = program();
        let target = WorkloadConfig::database().chain_frac;
        let (mut chain, mut total) = (0usize, 0usize);
        for s in &p.slots {
            if let Slot::ColdLoad { chain: c, .. } = s {
                total += 1;
                chain += *c as usize;
            }
        }
        let frac = chain as f64 / total as f64;
        assert!(
            (frac - target).abs() < 0.15,
            "chain fraction {frac} far from configured {target}"
        );
    }

    #[test]
    fn consumers_follow_cold_loads() {
        let p = program();
        let gap = WorkloadConfig::database().consume_gap;
        let n = p.slots.len();
        let mut paired = 0;
        let mut cold = 0;
        for (i, s) in p.slots.iter().enumerate() {
            if matches!(s, Slot::ColdLoad { .. }) {
                cold += 1;
                if matches!(p.slots[(i + gap) % n], Slot::Consume) {
                    paired += 1;
                }
            }
        }
        assert!(cold > 0);
        assert!(
            paired as f64 / cold as f64 > 0.6,
            "most cold loads should have a nearby consumer ({paired}/{cold})"
        );
    }

    #[test]
    fn web_preset_places_prefetches() {
        let p = Program::build(&WorkloadConfig::specweb99(), 3);
        let prefetches = p
            .slots
            .iter()
            .filter(|s| matches!(s, Slot::Prefetch { .. }))
            .count();
        assert!(prefetches > 0, "SPECweb99 preset must emit prefetch sites");
        // Database preset has none.
        let db = program();
        assert_eq!(
            db.slots
                .iter()
                .filter(|s| matches!(s, Slot::Prefetch { .. }))
                .count(),
            0
        );
    }

    #[test]
    fn jbb_has_more_casa_sites_than_web() {
        let jbb = Program::build(&WorkloadConfig::specjbb2000(), 3);
        let web = Program::build(&WorkloadConfig::specweb99(), 3);
        let count = |p: &Program| p.slots.iter().filter(|s| matches!(s, Slot::Casa)).count();
        assert!(count(&jbb) > 4 * count(&web));
    }

    #[test]
    fn chase_heap_exceeds_l2() {
        let p = program();
        let bytes = p.chase_nodes.len() as u64 * mlp_isa::LINE_BYTES;
        assert!(bytes > 512 * 1024, "chase heap should stress the L2");
        // all nodes line-aligned and in the chase region
        for &n in &p.chase_nodes {
            assert_eq!(n % mlp_isa::LINE_BYTES, 0);
            assert!(n >= layout::CHASE_BASE);
            assert!(n < layout::CHASE_BASE + layout::CHASE_BYTES);
        }
    }

    #[test]
    fn pc_mapping_is_linear() {
        let p = program();
        assert_eq!(p.pc_of(0), layout::CODE_BASE);
        assert_eq!(p.pc_of(10), layout::CODE_BASE + 40);
        assert_eq!(p.len(), WorkloadConfig::database().ring_slots);
    }
}
