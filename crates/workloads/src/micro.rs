//! Tiny deterministic micro-workloads with exactly known epoch structure.
//!
//! These generate short traces whose MLP under the epoch model can be
//! computed by hand, making them the backbone of the simulator test
//! suites — including the paper's worked Examples 1–5.
//!
//! All addresses are placed in a high "cold" region so that every access
//! misses a cold cache; filler ALU instructions carry no cross
//! dependences.

use mlp_isa::{Inst, Reg};

/// Base address for guaranteed-cold data lines.
pub const COLD_BASE: u64 = 0x4000_0000;
/// Base PC used by the micro traces (hot, tiny code footprint).
pub const PC_BASE: u64 = 0x1000;

fn cold(i: u64) -> u64 {
    COLD_BASE + i * 4096 // distinct pages, distinct lines
}

/// `n` independent missing loads, each into its own register, separated by
/// `gap` filler ALU instructions.
///
/// Under an unconstrained out-of-order window all `n` misses overlap: one
/// epoch, MLP = `n`.
///
/// # Examples
///
/// ```
/// let t = mlp_workloads::micro::independent_misses(4, 2);
/// assert_eq!(t.len(), 4 * 3); // load + 2 fillers each
/// ```
pub fn independent_misses(n: usize, gap: usize) -> Vec<Inst> {
    let mut v = Vec::new();
    let mut pc = PC_BASE;
    for k in 0..n {
        let dst = Reg::int(8 + (k % 8) as u8);
        v.push(Inst::load(pc, Reg::int(1), 0, dst, cold(k as u64)));
        pc += 4;
        for _ in 0..gap {
            v.push(filler(&mut pc));
        }
    }
    v
}

/// `n` pointer-chasing missing loads: each load's address register is the
/// previous load's destination, so no two can overlap. MLP = 1 regardless
/// of microarchitecture.
pub fn pointer_chase(n: usize, gap: usize) -> Vec<Inst> {
    let mut v = Vec::new();
    let mut pc = PC_BASE;
    for k in 0..n {
        let node = cold(k as u64);
        let next = cold(k as u64 + 1);
        v.push(Inst::load(pc, Reg::int(4), 0, Reg::int(4), node).with_value(next));
        pc += 4;
        for _ in 0..gap {
            v.push(filler(&mut pc));
        }
    }
    v
}

/// `n` independent missing loads with a serializing `MEMBAR` between each
/// pair: under configurations that serialize (A–D), MLP = 1.
pub fn serialized_misses(n: usize) -> Vec<Inst> {
    let mut v = Vec::new();
    let mut pc = PC_BASE;
    for k in 0..n {
        let dst = Reg::int(8 + (k % 8) as u8);
        v.push(Inst::load(pc, Reg::int(1), 0, dst, cold(k as u64)));
        pc += 4;
        if k + 1 < n {
            v.push(Inst::membar(pc));
            pc += 4;
        }
    }
    v
}

/// One filler ALU instruction (self-contained dependence-wise: reads the
/// zero register so it never waits on anything).
pub fn filler(pc: &mut u64) -> Inst {
    let i = Inst::alu(*pc, &[Reg::ZERO], Reg::int(30));
    *pc += 4;
    i
}

/// A structurally valid random micro trace for property-based tests:
/// a seed-deterministic mix of ALU ops, hot and cold loads, stores,
/// conditional branches (fall-through targets, so the PC stream stays
/// linear), membars and prefetches over a small register set.
///
/// # Examples
///
/// ```
/// let a = mlp_workloads::micro::random_trace(7, 100);
/// let b = mlp_workloads::micro::random_trace(7, 100);
/// assert_eq!(a, b);
/// assert_eq!(a.len(), 100);
/// ```
pub fn random_trace(seed: u64, len: usize) -> Vec<Inst> {
    fn mix(x: u64) -> u64 {
        let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
    let mut v = Vec::with_capacity(len);
    let mut pc = PC_BASE;
    let r = Reg::int;
    for k in 0..len {
        let h = mix(seed ^ (k as u64).wrapping_mul(0x100_0000_01b3));
        let reg_a = r(8 + (h >> 8) as u8 % 8);
        let reg_b = r(8 + (h >> 16) as u8 % 8);
        let inst = match h % 100 {
            0..=39 => Inst::alu(pc, &[reg_a, reg_b], r(8 + (h >> 24) as u8 % 8)),
            40..=54 => {
                // cold load: distinct page per index
                Inst::load(pc, reg_a, 0, reg_b, cold(1000 + k as u64)).with_value(h)
            }
            55..=64 => Inst::load(pc, Reg::int(1), 0, reg_b, 0x8000 + (h % 64) * 8),
            65..=74 => Inst::store(pc, reg_a, 0, reg_b, 0x8000 + (h % 64) * 8),
            75..=89 => Inst::cond_branch(pc, reg_a, h & 1 == 0, pc + 4),
            90..=93 => Inst::membar(pc),
            94..=96 => Inst::prefetch(pc, Reg::int(1), cold(2000 + k as u64)),
            _ => Inst::nop(pc),
        };
        pc += 4;
        v.push(inst);
    }
    v
}

/// The paper's **Example 1** (window-size termination): five instructions
/// where, with a window of 4, epoch sets are `{i1, i4}`, `{i2, i3, i5}`
/// and MLP = 1.5.
pub fn paper_example_1() -> Vec<Inst> {
    let r = Reg::int;
    vec![
        // i1: load 0(r1)->r2    (Dmiss)
        Inst::load(PC_BASE, r(1), 0, r(2), cold(0)).with_value(cold(10)),
        // i2: add r2,r3->r4
        Inst::alu(PC_BASE + 4, &[r(2), r(3)], r(4)).with_value(cold(10)),
        // i3: load (r4)->r5     (Dmiss, dependent on i1 through i2)
        Inst::load(PC_BASE + 8, r(4), 0, r(5), cold(10)),
        // i4: add r0,r1->r2
        Inst::alu(PC_BASE + 12, &[r(0), r(1)], r(2)),
        // i5: load (r7)->r8     (Dmiss, independent)
        Inst::load(PC_BASE + 16, r(7), 0, r(8), cold(20)),
    ]
}

/// The paper's **Example 2** (serializing instruction): epoch sets
/// `{i1, i2}`, `{i3, i4, i5}`, MLP = 1.5.
pub fn paper_example_2() -> Vec<Inst> {
    let r = Reg::int;
    vec![
        // i1: load (r1)->r2     (Dmiss)
        Inst::load(PC_BASE, r(1), 0, r(2), cold(0)).with_value(7),
        // i2: membar
        Inst::membar(PC_BASE + 4),
        // i3: add r2,r3->r4
        Inst::alu(PC_BASE + 8, &[r(2), r(3)], r(4)).with_value(cold(10)),
        // i4: load (r4)->r5     (Dmiss)
        Inst::load(PC_BASE + 12, r(4), 0, r(5), cold(10)),
        // i5: load (r7)->r8     (Dmiss)
        Inst::load(PC_BASE + 16, r(7), 0, r(8), cold(20)),
    ]
}

/// The paper's **Example 3** shape (I-miss + unresolvable branch): a
/// missing load, an instruction-fetch miss, a dependent missing load, a
/// mispredicted dependent branch and a final missing load.
///
/// The returned trace places `i2` on a cold code line (I-miss); the branch
/// `i4` depends on `i3`'s loaded value and must be treated as mispredicted
/// by the simulator (use a forced-mispredict branch observer in tests).
pub fn paper_example_3() -> Vec<Inst> {
    let r = Reg::int;
    let cold_pc = 0x9000_0000; // far from PC_BASE: its line is cold
    vec![
        // i1: load (r1)->r2     (Dmiss)
        Inst::load(PC_BASE, r(1), 0, r(2), cold(0)).with_value(1),
        // i2: add r2,r3->r4     (Imiss: fetched from a cold line)
        Inst::alu(cold_pc, &[r(2), r(3)], r(4)).with_value(cold(10)),
        // i3: load (r4)->r5     (Dmiss)
        Inst::load(cold_pc + 4, r(4), 0, r(5), cold(10)).with_value(0),
        // i4: beq r5,0,tgt      (Mispred, depends on i3)
        Inst::cond_branch(cold_pc + 8, r(5), true, cold_pc + 12),
        // i5: load (r7)->r8     (Dmiss)
        Inst::load(cold_pc + 12, r(7), 0, r(8), cold(20)),
    ]
}

/// The paper's **Example 4** (load issue policy): four loads and a store
/// whose address depends on the second load.
pub fn paper_example_4() -> Vec<Inst> {
    let r = Reg::int;
    vec![
        // i1: load 8(r1)->r2    (Dmiss)
        Inst::load(PC_BASE, r(1), 8, r(2), cold(0)).with_value(cold(10)),
        // i2: load 0(r2)->r3    (Dmiss, depends on i1)
        Inst::load(PC_BASE + 4, r(2), 0, r(3), cold(10)).with_value(cold(30)),
        // i3: load 108(r1)->r4  (Dmiss, independent)
        Inst::load(PC_BASE + 8, r(1), 108, r(4), cold(20)),
        // i4: store r5 -> 0(r3) (address depends on i2)
        Inst::store(PC_BASE + 12, r(3), 0, r(5), cold(30)),
        // i5: load 388(r1)->r6  (Dmiss, independent)
        Inst::load(PC_BASE + 16, r(1), 388, r(6), cold(40)),
    ]
}

/// The paper's **Example 5** (branch issue policy): a missing load, a
/// resolvable branch that depends on it, a mispredicted branch that does
/// *not*, and an independent missing load.
pub fn paper_example_5() -> Vec<Inst> {
    let r = Reg::int;
    vec![
        // i1: load 8(r1)->r2    (Dmiss)
        Inst::load(PC_BASE, r(1), 8, r(2), cold(0)).with_value(1),
        // i2: beq r2,1,0x1100   (depends on the miss; not mispredicted —
        // a cold predictor guesses not-taken, which is what happens)
        Inst::cond_branch(PC_BASE + 4, r(2), false, 0x1100),
        // i3: beq r1,1,...      (Mispred, independent of the miss: taken,
        // which a cold predictor gets wrong; the target is the next
        // instruction so the dynamic stream stays linear)
        Inst::cond_branch(PC_BASE + 8, r(1), true, PC_BASE + 12),
        // i4: load 108(r1)->r4  (Dmiss, independent)
        Inst::load(PC_BASE + 12, r(1), 108, r(4), cold(20)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_misses_touch_distinct_lines() {
        let t = independent_misses(8, 1);
        let lines: std::collections::HashSet<_> = t.iter().filter_map(|i| i.read_line()).collect();
        assert_eq!(lines.len(), 8);
    }

    #[test]
    fn pointer_chase_is_chained() {
        let t = pointer_chase(5, 0);
        for w in t.windows(2) {
            assert_eq!(w[0].value, w[1].mem.unwrap().addr);
            assert_eq!(w[0].dst, w[1].srcs[0]);
        }
    }

    #[test]
    fn serialized_misses_interleave_membars() {
        let t = serialized_misses(3);
        assert_eq!(t.len(), 5);
        assert!(t[1].is_serializing());
        assert!(t[3].is_serializing());
    }

    #[test]
    fn example_shapes() {
        assert_eq!(paper_example_1().len(), 5);
        assert_eq!(paper_example_2().len(), 5);
        assert_eq!(paper_example_3().len(), 5);
        assert_eq!(paper_example_4().len(), 5);
        assert_eq!(paper_example_5().len(), 4);
    }

    #[test]
    fn example1_dependences() {
        let t = paper_example_1();
        // i3 depends on i2's destination, which depends on i1's.
        assert_eq!(t[2].srcs[0], t[1].dst);
        assert!(t[1].srcs.contains(&t[0].dst));
        // i5 independent of all prior destinations
        let i5_src = t[4].srcs[0].unwrap();
        for prev in &t[..4] {
            assert_ne!(prev.dst, Some(i5_src));
        }
    }

    #[test]
    fn example4_store_depends_on_i2() {
        let t = paper_example_4();
        assert_eq!(t[3].srcs[0], t[1].dst);
        // the store address equals i2's loaded value
        assert_eq!(t[3].mem.unwrap().addr, t[1].value);
    }
}
