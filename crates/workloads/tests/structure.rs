//! Structural tests of the generated workloads: the mechanisms that make
//! the calibration work (loop-pattern branches, consumer placement,
//! prefetch bursts, pointer-chase persistence) hold by construction.

use mlp_isa::{BranchKind, Inst, OpKind, TraceSource};
use mlp_workloads::{Workload, WorkloadConfig, WorkloadKind};
use std::collections::HashMap;

fn take(kind: WorkloadKind, n: usize) -> Vec<Inst> {
    Workload::new(kind, 42).take_insts(n)
}

#[test]
fn pattern_branch_sites_are_loop_like() {
    // Most conditional-branch sites follow a deterministic pattern: long
    // runs in one direction broken by periodic flips. Verify per-site
    // outcome streaks are long for most sites.
    let insts = take(WorkloadKind::Database, 400_000);
    let mut outcomes: HashMap<u64, Vec<bool>> = HashMap::new();
    for i in &insts {
        if let (OpKind::Branch(BranchKind::Conditional), Some(b)) = (i.kind, i.branch) {
            outcomes.entry(i.pc).or_default().push(b.taken);
        }
    }
    let mut biased_sites = 0;
    let mut total_sites = 0;
    for (_, v) in outcomes.iter().filter(|(_, v)| v.len() >= 20) {
        total_sites += 1;
        let taken = v.iter().filter(|&&t| t).count() as f64 / v.len() as f64;
        if !(0.25..=0.75).contains(&taken) {
            biased_sites += 1;
        }
    }
    assert!(total_sites > 100, "need a meaningful site population");
    assert!(
        biased_sites as f64 / total_sites as f64 > 0.7,
        "most sites should be strongly biased ({biased_sites}/{total_sites})"
    );
}

#[test]
fn consumers_read_missing_values_promptly() {
    // After a cold load, some nearby instruction reads its destination.
    let insts = take(WorkloadKind::Database, 300_000);
    let mut consumed_quickly = 0;
    let mut cold_loads = 0;
    for (k, i) in insts.iter().enumerate() {
        let is_cold =
            i.kind == OpKind::Load && i.mem.map(|m| m.addr >= 0x4000_0000).unwrap_or(false);
        if !is_cold {
            continue;
        }
        cold_loads += 1;
        let dst = i.dst.unwrap();
        if insts[k + 1..]
            .iter()
            .take(8)
            .any(|j| j.dep_srcs().any(|r| r == dst))
        {
            consumed_quickly += 1;
        }
    }
    assert!(cold_loads > 500);
    assert!(
        consumed_quickly as f64 / cold_loads as f64 > 0.5,
        "most missing values must be used promptly ({consumed_quickly}/{cold_loads})"
    );
}

#[test]
fn web_prefetches_come_in_bursts_and_are_consumed() {
    let insts = take(WorkloadKind::SpecWeb99, 600_000);
    // Every prefetched address is demanded by a later load.
    let mut pf_addrs: Vec<(usize, u64)> = Vec::new();
    for (k, i) in insts.iter().enumerate() {
        if i.kind == OpKind::Prefetch {
            pf_addrs.push((k, i.mem.unwrap().addr));
        }
    }
    assert!(!pf_addrs.is_empty(), "SPECweb99 must prefetch");
    let mut consumed = 0;
    for &(k, addr) in &pf_addrs {
        if insts[k + 1..(k + 5000).min(insts.len())]
            .iter()
            .any(|j| j.kind == OpKind::Load && j.mem.map(|m| m.addr) == Some(addr))
        {
            consumed += 1;
        }
    }
    assert!(
        consumed as f64 / pf_addrs.len() as f64 > 0.8,
        "prefetches must be useful ({consumed}/{})",
        pf_addrs.len()
    );
}

#[test]
fn chase_nodes_are_revisited_with_stable_values() {
    // The pointer-chase heap is persistent: re-walking it presents the
    // same (address -> next) pairs, which is what makes last-value
    // prediction of chains possible after a full cycle.
    let cfg = WorkloadConfig {
        chase_lists: 2,
        chase_nodes_per_list: 64, // tiny heap: many re-walks
        ..WorkloadConfig::database()
    };
    let wl = Workload::with_config(&cfg, 5);
    let mut seen: HashMap<u64, u64> = HashMap::new(); // node -> next
    let mut revisits = 0;
    for i in wl.take(400_000) {
        if i.kind == OpKind::Load && i.dst == i.srcs[0] {
            // chain load: reads and writes the chase cursor register
            let addr = i.mem.unwrap().addr;
            if let Some(&prev) = seen.get(&addr) {
                assert_eq!(prev, i.value, "chase links must be persistent");
                revisits += 1;
            }
            seen.insert(addr, i.value);
        }
    }
    assert!(
        revisits > 100,
        "tiny heap must be re-walked (got {revisits})"
    );
}

#[test]
fn casa_sites_sit_inside_jbb_miss_zones() {
    // SPECjbb2000's serialization pressure comes from CASAs adjacent to
    // its misses: verify CASAs appear within a few instructions of cold
    // loads much more often than chance.
    let insts = take(WorkloadKind::SpecJbb2000, 400_000);
    let mut near_cold = 0;
    let mut casas = 0;
    for (k, i) in insts.iter().enumerate() {
        if i.kind != OpKind::Atomic {
            continue;
        }
        casas += 1;
        let lo = k.saturating_sub(12);
        let hi = (k + 12).min(insts.len());
        if insts[lo..hi].iter().any(|j| {
            j.kind == OpKind::Load && j.mem.map(|m| m.addr >= 0x4000_0000).unwrap_or(false)
        }) {
            near_cold += 1;
        }
    }
    assert!(casas > 500, "SPECjbb2000 must execute many CASAs");
    assert!(
        near_cold as f64 / casas as f64 > 0.3,
        "a large share of CASAs must sit amid misses ({near_cold}/{casas})"
    );
}

#[test]
fn custom_config_round_trips_through_walker() {
    let mut cfg = WorkloadConfig::specweb99();
    cfg.prefetch_coverage = 0.0;
    let wl = Workload::with_config(&cfg, 9);
    let prefetches = wl
        .take(300_000)
        .filter(|i| i.kind == OpKind::Prefetch)
        .count();
    assert_eq!(prefetches, 0, "coverage 0 must disable prefetching");
}

#[test]
fn excursions_always_return() {
    // Every cold-code call is followed (eventually) by a return to the
    // instruction after the call site.
    let insts = take(WorkloadKind::Database, 400_000);
    let mut pending_return: Option<u64> = None;
    let mut excursions = 0;
    for i in &insts {
        if let (OpKind::Branch(BranchKind::Call), Some(b)) = (i.kind, i.branch) {
            if b.target >= 0x8000_0000 {
                pending_return = Some(i.pc + 4);
                excursions += 1;
            }
        }
        if let (OpKind::Branch(BranchKind::Return), Some(b), Some(expect)) =
            (i.kind, i.branch, pending_return)
        {
            if i.pc >= 0x8000_0000 {
                assert_eq!(b.target, expect, "excursion must return to the call site");
                pending_return = None;
            }
        }
    }
    assert!(excursions > 0, "database must take cold-code excursions");
}

#[test]
fn different_seeds_give_statistically_similar_programs() {
    // Seeds change the bytes but not the calibrated statistics.
    let a: Vec<Inst> = take(WorkloadKind::SpecJbb2000, 300_000);
    let b: Vec<Inst> = Workload::new(WorkloadKind::SpecJbb2000, 1234).take_insts(300_000);
    assert_ne!(a, b);
    let casa = |v: &[Inst]| v.iter().filter(|i| i.kind == OpKind::Atomic).count() as f64;
    let ra = casa(&a) / a.len() as f64;
    let rb = casa(&b) / b.len() as f64;
    assert!(
        (ra - rb).abs() < 0.3 * ra.max(rb),
        "CASA rates should agree across seeds ({ra:.4} vs {rb:.4})"
    );
}
